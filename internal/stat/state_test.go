package stat

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// sameFloat compares bit-for-bit, treating NaN as equal to NaN (a NaN
// marker restored as a different NaN payload would still be a round-trip
// failure, so compare the raw bits).
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameSummary(a, b Summary) bool {
	return a.N == b.N && a.NonFinite == b.NonFinite &&
		sameFloat(a.Mean, b.Mean) && sameFloat(a.Std, b.Std) &&
		sameFloat(a.Min, b.Min) && sameFloat(a.Max, b.Max) &&
		sameFloat(a.Median, b.Median) && sameFloat(a.P05, b.P05) && sameFloat(a.P95, b.P95)
}

// randomStream draws n observations, occasionally non-finite so the
// Rejected counter participates in the round-trip.
func randomStream(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch rng.Intn(12) {
		case 0:
			xs[i] = math.NaN()
		case 1:
			xs[i] = math.Inf(1 - 2*rng.Intn(2))
		default:
			xs[i] = rng.NormFloat64()*3 + 10
		}
	}
	return xs
}

// jsonRoundTrip pushes a state value through encoding/json, the same
// serialization the checkpoint layer uses, so the test covers the actual
// persistence path and not just the in-memory copy.
func jsonRoundTrip[T any](t *testing.T, s T) T {
	t.Helper()
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	var out T
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}
	return out
}

// TestStreamSummaryStateRoundTrip is the satellite property test:
// snapshotting a StreamSummary at any prefix k, serializing the state
// through JSON, restoring it into a fresh sink and feeding the remaining
// observations must be bit-identical to a never-snapshotted run —
// including the P² pre-warmup (n < 5) regime and the non-finite Rejected
// counter.
func TestStreamSummaryStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		// Small lengths dominate so the n < 5 P² regime (and the k < 5
		// snapshot point) is exercised constantly, but long streams with
		// many marker adjustments appear too.
		n := rng.Intn(8)
		if trial%4 == 0 {
			n = 5 + rng.Intn(300)
		}
		xs := randomStream(rng, n)
		k := 0
		if n > 0 {
			k = rng.Intn(n + 1)
		}

		ref := NewStreamSummary()
		for _, x := range xs {
			ref.Add(x)
		}

		a := NewStreamSummary()
		for _, x := range xs[:k] {
			a.Add(x)
		}
		b := NewStreamSummary()
		b.Restore(jsonRoundTrip(t, a.State()))
		for _, x := range xs[k:] {
			b.Add(x)
		}

		if b.N() != ref.N() || b.Rejected() != ref.Rejected() {
			t.Fatalf("trial %d (n=%d k=%d): N/Rejected %d/%d, want %d/%d",
				trial, n, k, b.N(), b.Rejected(), ref.N(), ref.Rejected())
		}
		if got, want := b.Summary(), ref.Summary(); !sameSummary(got, want) {
			t.Fatalf("trial %d (n=%d k=%d): resumed summary %+v differs from uninterrupted %+v",
				trial, n, k, got, want)
		}
	}
}

// TestWelfordStateRoundTrip checks the Welford accumulator alone: every
// moment and extremum must continue bit-identically after a restore.
func TestWelfordStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		k := 0
		if n > 0 {
			k = rng.Intn(n + 1)
		}
		var ref, a, b Welford
		for _, x := range xs {
			ref.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		b.Restore(jsonRoundTrip(t, a.State()))
		for _, x := range xs[k:] {
			b.Add(x)
		}
		if b.N() != ref.N() || !sameFloat(b.Mean(), ref.Mean()) || !sameFloat(b.Var(), ref.Var()) ||
			!sameFloat(b.Min(), ref.Min()) || !sameFloat(b.Max(), ref.Max()) {
			t.Fatalf("trial %d: welford state diverged after restore at k=%d of %d", trial, k, n)
		}
	}
}

// TestP2QuantileStateRoundTrip checks a single P² estimator across the
// warmup boundary: snapshots taken below, at and above n=5 must all
// continue bit-identically, including the desired-position accumulators.
func TestP2QuantileStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range []float64{0.05, 0.5, 0.95} {
		for trial := 0; trial < 60; trial++ {
			n := rng.Intn(120)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.ExpFloat64()
			}
			k := 0
			if n > 0 {
				k = rng.Intn(n + 1)
			}
			ref := NewP2Quantile(p)
			for _, x := range xs {
				ref.Add(x)
			}
			a := NewP2Quantile(p)
			for _, x := range xs[:k] {
				a.Add(x)
			}
			b := NewP2Quantile(p)
			b.Restore(jsonRoundTrip(t, a.State()))
			for _, x := range xs[k:] {
				b.Add(x)
			}
			if b.N() != ref.N() || !sameFloat(b.Value(), ref.Value()) {
				t.Fatalf("p=%g trial %d: P² value differs after restore at k=%d of %d: %g vs %g",
					p, trial, k, n, b.Value(), ref.Value())
			}
			// The internal markers must match too, or later Adds would
			// diverge even though the current Value happens to agree.
			if sa, sb := ref.State(), b.State(); jsonString(t, sa) != jsonString(t, sb) {
				t.Fatalf("p=%g trial %d: marker state differs after restore: %+v vs %+v", p, trial, sb, sa)
			}
		}
	}
}

func jsonString(t *testing.T, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestHistogramStateRoundTrip checks the histogram state survives the
// JSON round trip with independent bin storage.
func TestHistogramStateRoundTrip(t *testing.T) {
	xs := []float64{1, 2, 2.5, 3, 7, 9, math.NaN()}
	h := NewHistogram(xs, 4)
	var g Histogram
	g.Restore(jsonRoundTrip(t, h.State()))
	if jsonString(t, g) != jsonString(t, *h) {
		t.Fatalf("restored histogram %+v differs from original %+v", g, *h)
	}
	// The restored copy must own its bins.
	g.Counts[0]++
	if g.Counts[0] == h.Counts[0] {
		t.Fatal("restored histogram shares bin storage with the original")
	}
}
