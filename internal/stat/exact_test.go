package stat

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// bigSum is the reference: an arbitrary-precision sum rounded once to
// float64 at the end — the definition of "correctly rounded".
func bigSum(xs []float64) float64 {
	acc := new(big.Float).SetPrec(2000)
	for _, x := range xs {
		acc.Add(acc, new(big.Float).SetPrec(2000).SetFloat64(x))
	}
	v, _ := acc.Float64()
	return v
}

// hardValues spans magnitudes that defeat naive and Kahan summation.
func hardValues(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(32)-16))
	}
	return xs
}

func TestExactSumCorrectlyRounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		xs := hardValues(rng, 200)
		var s ExactSum
		for _, x := range xs {
			s.Add(x)
		}
		want := bigSum(xs)
		if math.Float64bits(s.Value()) != math.Float64bits(want) {
			t.Fatalf("trial %d: ExactSum %.17g, reference %.17g", trial, s.Value(), want)
		}
	}
}

// TestExactSumPartitionInvariance is the sharded-accumulator property:
// split a stream into arbitrary per-worker shards, merge in arbitrary
// order, and the bits match the single-stream sum. This is what makes
// per-worker sharding legal in the Monte-Carlo kernel.
func TestExactSumPartitionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		xs := hardValues(rng, 300)
		var whole ExactSum
		for _, x := range xs {
			whole.Add(x)
		}
		k := 1 + rng.Intn(7)
		shards := make([]ExactSum, k)
		for _, x := range xs {
			shards[rng.Intn(k)].Add(x)
		}
		var merged ExactSum
		for _, i := range rng.Perm(k) {
			merged.Merge(&shards[i])
		}
		if math.Float64bits(merged.Value()) != math.Float64bits(whole.Value()) {
			t.Fatalf("trial %d (k=%d): merged %.17g, single-stream %.17g",
				trial, k, merged.Value(), whole.Value())
		}
	}
}

func TestExactSumPartialsRoundTrip(t *testing.T) {
	var s ExactSum
	for _, x := range []float64{1e16, 1, -1e16, 0.5, 3e-9} {
		s.Add(x)
	}
	var r ExactSum
	r.SetPartials(s.Partials())
	r.Add(2.5)
	s.Add(2.5)
	if math.Float64bits(r.Value()) != math.Float64bits(s.Value()) {
		t.Fatalf("restored sum diverged: %.17g vs %.17g", r.Value(), s.Value())
	}
}

// momentsEqualBits compares every statistic of two accumulators bit for
// bit, the sharded-merge invariant of the MC kernel.
func momentsEqualBits(a, b *Moments) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.N() == b.N() && a.NonFinite() == b.NonFinite() &&
		eq(a.Mean(), b.Mean()) && eq(a.Var(), b.Var()) && eq(a.Std(), b.Std()) &&
		eq(a.Min(), b.Min()) && eq(a.Max(), b.Max())
}

// TestMomentsShardedMergeBitExact is the property test behind the
// per-worker sharded accumulators: any partition of the sample stream
// into shards, merged in any order, reproduces the single-stream moments
// bit for bit — including non-finite rejection counts and empty shards.
func TestMomentsShardedMergeBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		xs := hardValues(rng, 250)
		// Sprinkle in rejects: the shards must count them identically.
		for i := range xs {
			if rng.Intn(40) == 0 {
				xs[i] = math.NaN()
			}
			if rng.Intn(40) == 0 {
				xs[i] = math.Inf(1)
			}
		}
		var whole Moments
		for _, x := range xs {
			whole.Add(x)
		}
		k := 1 + rng.Intn(8) // k=1 and shards left empty are both legal
		shards := make([]Moments, k)
		for _, x := range xs {
			shards[rng.Intn(k)].Add(x)
		}
		var merged Moments
		for _, i := range rng.Perm(k) {
			merged.Merge(&shards[i])
		}
		if !momentsEqualBits(&merged, &whole) {
			t.Fatalf("trial %d (k=%d): sharded merge differs from single stream:\nmerged n=%d mean=%.17g var=%.17g\nwhole  n=%d mean=%.17g var=%.17g",
				trial, k, merged.N(), merged.Mean(), merged.Var(),
				whole.N(), whole.Mean(), whole.Var())
		}
	}
}

func TestMomentsBasics(t *testing.T) {
	var m Moments
	if m.N() != 0 || m.Var() != 0 || m.Std() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 || m.Mean() != 5 || m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("n=%d mean=%g min=%g max=%g", m.N(), m.Mean(), m.Min(), m.Max())
	}
	// Sample variance of the classic σ=2 population: 32/7.
	if math.Abs(m.Var()-32.0/7.0) > 1e-15 {
		t.Fatalf("var = %.17g, want 32/7", m.Var())
	}
	m.Add(math.NaN())
	m.Add(math.Inf(-1))
	if m.N() != 8 || m.NonFinite() != 2 {
		t.Fatalf("non-finite handling: n=%d rejected=%d", m.N(), m.NonFinite())
	}
}
