package poleres

import (
	"math"
	"math/cmplx"
	"testing"

	"lcsim/internal/mat"
)

// mixedModel has a conjugate unstable pair plus stable poles, to exercise
// the filters on complex spectra.
func mixedModel() *Macromodel {
	m := &Macromodel{Np: 2, D0: mat.NewDense(2, 2)}
	m.D0.Set(0, 0, 2)
	m.D0.Set(1, 1, 3)
	add := func(p complex128, r00, r01 complex128) {
		res := mat.NewCDense(2, 2)
		res.Set(0, 0, r00)
		res.Set(0, 1, r01)
		res.Set(1, 0, r01)
		res.Set(1, 1, r00)
		m.Poles = append(m.Poles, p)
		m.Res = append(m.Res, res)
	}
	add(complex(-1e9, 0), complex(-50e9, 0), complex(-5e9, 0))
	// Unstable conjugate pair.
	add(complex(1e11, 2e11), complex(1e9, 5e8), complex(2e8, 1e8))
	add(complex(1e11, -2e11), complex(1e9, -5e8), complex(2e8, -1e8))
	add(complex(-4e9, 0), complex(-80e9, 0), complex(-8e9, 0))
	return m
}

func TestStabilizeShiftPreservesDCMatrix(t *testing.T) {
	m := mixedModel()
	before := m.DCZ()
	st, rep := m.StabilizeShift()
	if len(rep.Removed) != 2 {
		t.Fatalf("removed %d poles, want the conjugate pair", len(rep.Removed))
	}
	if !st.IsStable() {
		t.Fatal("still unstable")
	}
	after := st.DCZ()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(before.At(i, j)-after.At(i, j)) > 1e-9*math.Abs(before.At(i, j)) {
				t.Fatalf("DC changed at (%d,%d): %g vs %g", i, j, before.At(i, j), after.At(i, j))
			}
		}
	}
	// Surviving residues untouched (unlike the β variant).
	if st.Res[0].At(0, 0) != m.Res[0].At(0, 0) {
		t.Fatal("shift variant must not rescale surviving residues")
	}
}

func TestStabilizeBetaPreservesDCMatrix(t *testing.T) {
	m := mixedModel()
	before := m.DCZ()
	st, _ := m.Stabilize()
	after := st.DCZ()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(before.At(i, j)-after.At(i, j)) > 1e-6*(1+math.Abs(before.At(i, j))) {
				t.Fatalf("β variant DC changed at (%d,%d): %g vs %g", i, j, before.At(i, j), after.At(i, j))
			}
		}
	}
}

func TestStabilizeShiftKeepsConjugateSymmetry(t *testing.T) {
	m := mixedModel()
	st, _ := m.StabilizeShift()
	s := complex(3e8, 7e9)
	z1 := st.Z(s)
	z2 := st.Z(cmplx.Conj(s))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(z1.At(i, j)-cmplx.Conj(z2.At(i, j))) > 1e-9*(1+cmplx.Abs(z1.At(i, j))) {
				t.Fatalf("conjugate symmetry broken at (%d,%d)", i, j)
			}
		}
	}
	// D0 must stay real-valued by construction (it is a *mat.Dense), and
	// the shifted contribution of the conjugate pair must cancel any
	// imaginary part: check Z at a real frequency is conjugate-symmetric
	// already covered; additionally Z(0) must be real.
	z0 := st.Z(0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(imag(z0.At(i, j))) > 1e-9 {
				t.Fatalf("Z(0) not real at (%d,%d): %v", i, j, z0.At(i, j))
			}
		}
	}
}

func TestStabilizeShiftNoopOnStable(t *testing.T) {
	rom, _ := ladderROM(t, 8, 3)
	m, err := Extract(rom)
	if err != nil {
		t.Fatal(err)
	}
	st, rep := m.StabilizeShift()
	if len(rep.Removed) != 0 || len(st.Poles) != len(m.Poles) {
		t.Fatal("stable model must pass through")
	}
	for i := 0; i < m.Np; i++ {
		for j := 0; j < m.Np; j++ {
			if st.D0.At(i, j) != m.D0.At(i, j) {
				t.Fatal("D0 must be unchanged")
			}
		}
	}
}

func TestStabilizeVariantsAgreeAtDC(t *testing.T) {
	m := mixedModel()
	beta, _ := m.Stabilize()
	shift, _ := m.StabilizeShift()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(beta.DCZ().At(i, j)-shift.DCZ().At(i, j)) > 1e-6*(1+math.Abs(shift.DCZ().At(i, j))) {
				t.Fatalf("variants disagree at DC (%d,%d)", i, j)
			}
		}
	}
}

func TestMacromodelZAdditivity(t *testing.T) {
	// Z(s) evaluated pole-by-pole must match the builtin evaluation.
	m := mixedModel()
	s := complex(1e8, -4e9)
	want := m.Z(s)
	acc := mat.NewCDense(2, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			acc.Set(i, j, complex(m.D0.At(i, j), 0))
		}
	}
	for k, p := range m.Poles {
		f := 1 / (s - p)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				acc.Set(i, j, acc.At(i, j)+m.Res[k].At(i, j)*f)
			}
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(acc.At(i, j)-want.At(i, j)) > 1e-12*(1+cmplx.Abs(want.At(i, j))) {
				t.Fatal("Z evaluation mismatch")
			}
		}
	}
}

func TestDominantPreservesDCAndOrdering(t *testing.T) {
	m := mixedModel()
	st, _ := m.StabilizeShift()
	before := st.DCZ()
	d := st.Dominant(1)
	if len(d.Poles) != 1 {
		t.Fatalf("kept %d poles, want 1", len(d.Poles))
	}
	after := d.DCZ()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(before.At(i, j)-after.At(i, j)) > 1e-9*(1+math.Abs(before.At(i, j))) {
				t.Fatalf("DC changed at (%d,%d)", i, j)
			}
		}
	}
	// The kept pole must be the heaviest: -4e9 carries |r/p| = 20 per
	// entry vs -1e9's 50... compute: r=-80e9/p=-4e9 -> 20; r=-50e9/-1e9 ->
	// 50. So the -1e9 pole wins.
	if d.Poles[0] != complex(-1e9, 0) {
		t.Fatalf("kept pole %v, want the dominant -1e9", d.Poles[0])
	}
}

func TestDominantKeepsConjugatePairsTogether(t *testing.T) {
	m := &Macromodel{Np: 1, D0: mat.NewDense(1, 1)}
	add := func(p, r complex128) {
		res := mat.NewCDense(1, 1)
		res.Set(0, 0, r)
		m.Poles = append(m.Poles, p)
		m.Res = append(m.Res, res)
	}
	add(complex(-1e9, 3e9), complex(-9e9, 1e9))
	add(complex(-1e9, -3e9), complex(-9e9, -1e9))
	add(complex(-8e9, 0), complex(-1e9, 0)) // light real pole
	d := m.Dominant(2)
	if len(d.Poles) != 2 {
		t.Fatalf("kept %d", len(d.Poles))
	}
	if cmplx.Conj(d.Poles[0]) != d.Poles[1] {
		t.Fatalf("pair split: %v %v", d.Poles[0], d.Poles[1])
	}
	// Response stays real: Z at a real frequency has no imaginary DC.
	if math.Abs(imag(d.Z(0).At(0, 0))) > 1e-9 {
		t.Fatal("Z(0) not real after truncation")
	}
}

func TestDominantNoopWhenKeepLarge(t *testing.T) {
	m := mixedModel()
	d := m.Dominant(100)
	if len(d.Poles) != len(m.Poles) {
		t.Fatal("keep >= len must copy")
	}
}
