package poleres

import (
	"math"
	"math/cmplx"
	"testing"

	"lcsim/internal/circuit"
	"lcsim/internal/mat"
	"lcsim/internal/mor"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// romRC returns the 2-state ROM of a simple series-RC one-port:
// port --R1-- x --C-- gnd, with extra shunt g0 at the port. The exact
// impedance is known analytically.
func ladderROM(t *testing.T, nSeg, order int) (*mor.ROM, *circuit.VarSystem) {
	t.Helper()
	nl := circuit.New()
	prev := "in"
	for k := 1; k <= nSeg; k++ {
		n := "n" + string(rune('a'+k))
		nl.AddR("R"+n, prev, n, circuit.V(100))
		nl.AddC("C"+n, n, "0", circuit.V(1e-13))
		prev = n
	}
	nl.MarkPort("in")
	sys, err := circuit.AssembleVariational(nl)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPortConductance([]float64{1e-3}); err != nil {
		t.Fatal(err)
	}
	rom, err := mor.Reduce(sys.GNominal(), sys.CNominal(), 1, order)
	if err != nil {
		t.Fatal(err)
	}
	return rom, sys
}

func TestExtractMatchesROMImpedance(t *testing.T) {
	rom, _ := ladderROM(t, 10, 4)
	m, err := Extract(rom)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0, 1e6, 1e8, 1e9, 1e10} {
		s := complex(0, 2*math.Pi*f)
		zRom, err := rom.ROMImpedance(s)
		if err != nil {
			t.Fatal(err)
		}
		zPR := m.Z(s)
		d := cmplx.Abs(zPR.At(0, 0) - zRom.At(0, 0))
		if d > 1e-6*cmplx.Abs(zRom.At(0, 0)) {
			t.Fatalf("pole/residue Z differs from ROM at f=%g: %v vs %v", f, zPR.At(0, 0), zRom.At(0, 0))
		}
	}
}

func TestExtractStablePolesForRC(t *testing.T) {
	rom, _ := ladderROM(t, 12, 5)
	m, err := Extract(rom)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsStable() {
		t.Fatalf("nominal RC reduction must be stable, got unstable poles %v", m.UnstablePoles())
	}
	for _, p := range m.Poles {
		if real(p) >= 0 {
			t.Fatalf("RC pole %v not in open left half plane", p)
		}
	}
	if len(m.Poles) == 0 {
		t.Fatal("expected at least one pole")
	}
}

func TestExtractConjugateSymmetry(t *testing.T) {
	rom, _ := ladderROM(t, 8, 4)
	m, err := Extract(rom)
	if err != nil {
		t.Fatal(err)
	}
	// Z at conjugate frequencies must be conjugate (real impulse response).
	s := complex(1e7, 2e8)
	z1 := m.Z(s).At(0, 0)
	z2 := m.Z(cmplx.Conj(s)).At(0, 0)
	if cmplx.Abs(z1-cmplx.Conj(z2)) > 1e-9*cmplx.Abs(z1) {
		t.Fatalf("conjugate symmetry violated: %v vs %v", z1, z2)
	}
}

func TestDCZMatchesSchurComplement(t *testing.T) {
	rom, sys := ladderROM(t, 10, 3)
	m, err := Extract(rom)
	if err != nil {
		t.Fatal(err)
	}
	zFull, err := mor.PortImpedance(sys.GNominal(), sys.CNominal(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.DCZ().At(0, 0), real(zFull.At(0, 0)), 1e-6*real(zFull.At(0, 0))) {
		t.Fatalf("DCZ = %g, want %g", m.DCZ().At(0, 0), real(zFull.At(0, 0)))
	}
}

// unstableModel builds a synthetic macromodel with one unstable pole.
func unstableModel() *Macromodel {
	m := &Macromodel{Np: 1, D0: mat.NewDense(1, 1)}
	add := func(p complex128, r complex128) {
		res := mat.NewCDense(1, 1)
		res.Set(0, 0, r)
		m.Poles = append(m.Poles, p)
		m.Res = append(m.Res, res)
	}
	add(complex(-1e9, 0), complex(-100e9, 0)) // stable: contributes +100 at DC
	add(complex(-5e9, 0), complex(-250e9, 0)) // stable: contributes +50 at DC
	add(complex(+2e12, 0), complex(1e10, 0))  // unstable junk mode
	return m
}

func TestStabilizeRemovesUnstableAndPreservesDC(t *testing.T) {
	m := unstableModel()
	if m.IsStable() {
		t.Fatal("fixture must be unstable")
	}
	dcBefore := m.DCZ().At(0, 0)
	st, rep := m.Stabilize()
	if !st.IsStable() {
		t.Fatal("Stabilize left unstable poles")
	}
	if len(rep.Removed) != 1 || real(rep.Removed[0]) != 2e12 {
		t.Fatalf("Removed = %v", rep.Removed)
	}
	dcAfter := st.DCZ().At(0, 0)
	if !almostEq(dcAfter, dcBefore, 1e-9*math.Abs(dcBefore)) {
		t.Fatalf("β correction failed: DC %g -> %g", dcBefore, dcAfter)
	}
	if rep.BetaMin == 1 && rep.BetaMax == 1 {
		t.Fatal("β should differ from 1 when an unstable pole carried DC content")
	}
	// Original must be untouched.
	if m.IsStable() {
		t.Fatal("Stabilize must not mutate the receiver")
	}
}

func TestStabilizeNoopOnStable(t *testing.T) {
	rom, _ := ladderROM(t, 6, 3)
	m, err := Extract(rom)
	if err != nil {
		t.Fatal(err)
	}
	st, rep := m.Stabilize()
	if len(rep.Removed) != 0 {
		t.Fatal("stable model must not lose poles")
	}
	if len(st.Poles) != len(m.Poles) {
		t.Fatal("pole count changed")
	}
}

func TestConvolverStepResponseMatchesAnalytic(t *testing.T) {
	// Single-pole model: Z(s) = r/(s-p) with p = -1/τ. Driven by constant
	// current I, v(t) = -r/p · I (1 - e^{pt}).
	p := complex(-1e9, 0)
	r := complex(1e12, 0) // DC resistance = -r/p = 1000 Ω
	m := &Macromodel{Np: 1, D0: mat.NewDense(1, 1)}
	res := mat.NewCDense(1, 1)
	res.Set(0, 0, r)
	m.Poles = []complex128{p}
	m.Res = []*mat.CDense{res}

	h := 1e-11
	cv, err := NewConvolver(m, h)
	if err != nil {
		t.Fatal(err)
	}
	const I = 1e-3
	cv.SetInitialCurrent([]float64{I}) // true step, not first-interval ramp
	var v float64
	tEnd := 12e-9
	for tt := h; tt <= tEnd+h/2; tt += h {
		v = cv.Advance([]float64{I})[0]
		want := 1000 * I * (1 - math.Exp(real(p)*tt))
		if !almostEq(v, want, 1e-3*1000*I) {
			t.Fatalf("convolver at t=%g: %g, want %g", tt, v, want)
		}
	}
	// Steady state = IR.
	if !almostEq(v, 1.0, 1e-3) {
		t.Fatalf("steady state %g, want 1.0", v)
	}
}

func TestConvolverHistorySplit(t *testing.T) {
	// v = History + EffZ·i must equal Advance(i) for any i.
	rom, _ := ladderROM(t, 8, 4)
	m, err := Extract(rom)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := NewConvolver(m, 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	// Establish some history.
	for k := 0; k < 10; k++ {
		cv.Advance([]float64{1e-3})
	}
	hist := cv.History()
	zeff := cv.EffZ()
	i1 := []float64{-2e-3}
	want := hist[0] + zeff.At(0, 0)*i1[0]
	got := cv.Advance(i1)[0]
	if !almostEq(got, want, 1e-12+1e-9*math.Abs(want)) {
		t.Fatalf("history split violated: %g vs %g", got, want)
	}
}

func TestConvolverRejectsUnstable(t *testing.T) {
	if _, err := NewConvolver(unstableModel(), 1e-12); err == nil {
		t.Fatal("convolver must reject unstable macromodels")
	}
}

func TestConvolverMatchesSpiceOnLadder(t *testing.T) {
	// Drive the reduced RC one-port with a current step through the
	// convolver and compare the port voltage against a direct transient
	// simulation of the full ladder with the same current source.
	nl := circuit.New()
	prev := "in"
	for k := 1; k <= 10; k++ {
		n := "n" + string(rune('a'+k))
		nl.AddR("R"+n, prev, n, circuit.V(100))
		nl.AddC("C"+n, n, "0", circuit.V(1e-13))
		prev = n
	}
	nl.MarkPort("in")
	sys, err := circuit.AssembleVariational(nl)
	if err != nil {
		t.Fatal(err)
	}
	// A port shunt keeps G nonsingular (mimics the driver's G_out).
	gout := 1e-3
	if err := sys.SetPortConductance([]float64{gout}); err != nil {
		t.Fatal(err)
	}
	rom, err := mor.Reduce(sys.GNominal(), sys.CNominal(), 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Extract(rom)
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-12
	cv, err := NewConvolver(m, h)
	if err != nil {
		t.Fatal(err)
	}
	// Reference via internal/spice with the same gout resistor.
	// (imported indirectly through an RC analytic check instead: the DC
	// value of the port voltage for a current step I is I·Z(0).)
	const I = 1e-3
	var v float64
	for tt := h; tt <= 2e-8; tt += h {
		v = cv.Advance([]float64{I})[0]
	}
	want := I * m.DCZ().At(0, 0)
	if !almostEq(v, want, 1e-3*math.Abs(want)) {
		t.Fatalf("ladder settles at %g, want %g", v, want)
	}
	// Z(0) for the shunted ladder is 1/gout in parallel with the
	// open-ended RC ladder (infinite DC resistance): exactly 1/gout.
	if !almostEq(m.DCZ().At(0, 0), 1/gout, 1e-6/gout) {
		t.Fatalf("DCZ = %g, want %g", m.DCZ().At(0, 0), 1/gout)
	}
}

func TestConvolverReset(t *testing.T) {
	rom, _ := ladderROM(t, 6, 3)
	m, err := Extract(rom)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := NewConvolver(m, 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	first := cv.Advance([]float64{1e-3})[0]
	cv.Advance([]float64{1e-3})
	cv.Reset()
	again := cv.Advance([]float64{1e-3})[0]
	if !almostEq(first, again, 1e-15) {
		t.Fatal("Reset must restore initial state")
	}
}

func TestNewConvolverBadStep(t *testing.T) {
	rom, _ := ladderROM(t, 6, 3)
	m, err := Extract(rom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewConvolver(m, 0); err == nil {
		t.Fatal("zero step must error")
	}
}
