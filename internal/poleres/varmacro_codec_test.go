package poleres

import (
	"bytes"
	"errors"
	"testing"
)

// TestVarMacromodelCodecRoundTrip: decode(encode(vm)) must reproduce the
// model bit for bit — the property the cross-run model cache's "warm run
// matches cold run exactly" contract rests on. Re-encoding the decoded
// model and comparing byte streams checks every serialized float at full
// bit width in one shot.
func TestVarMacromodelCodecRoundTrip(t *testing.T) {
	vrom := varLadder(t, 12, 4)
	vm, err := ExtractVar(vrom)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeVarMacromodel(vm)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeVarMacromodel(enc, vrom)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeVarMacromodel(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding the decoded macromodel changed the byte stream: codec is not bit-exact")
	}
	// The decoded model must also be rebound to the live library: its
	// evaluation (which exercises the unexported Gr0/DGr references the
	// stream does not carry) has to agree exactly with the original.
	w := map[string]float64{"rw": 0.3, "cw": -0.2}
	if e := zErr(mustAt(t, dec, w), mustAt(t, vm, w)); e != 0 {
		t.Fatalf("decoded macromodel evaluates differently from the original: zErr=%.3g", e)
	}
}

// TestDecodeVarMacromodelRejectsDamage: every corruption class — bad
// magic, truncation, trailing garbage — must surface ErrCodec so the
// cache layer falls back to re-extraction instead of trusting the bytes.
func TestDecodeVarMacromodelRejectsDamage(t *testing.T) {
	vrom := varLadder(t, 8, 3)
	vm, err := ExtractVar(vrom)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeVarMacromodel(vm)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("not-a-macromodel"), enc[16:]...),
		"truncated":   enc[:len(enc)-9],
		"header only": enc[:16],
		"trailing":    append(append([]byte{}, enc...), 0xab),
	}
	for name, data := range cases {
		if _, err := DecodeVarMacromodel(data, vrom); !errors.Is(err, ErrCodec) {
			t.Errorf("%s: err = %v, want ErrCodec", name, err)
		}
	}
}

// TestDecodeVarMacromodelRejectsWrongLibrary: a stream rebound to a
// library with a different shape or parameter list must be refused —
// a decoded model silently bound to the wrong Gr0/DGr would evaluate
// plausibly and wrongly.
func TestDecodeVarMacromodelRejectsWrongLibrary(t *testing.T) {
	vrom := varLadder(t, 8, 3)
	vm, err := ExtractVar(vrom)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeVarMacromodel(vm)
	if err != nil {
		t.Fatal(err)
	}
	other := synthVarROM() // 1 port but params ["p"], not ["rw","cw"]
	if _, err := DecodeVarMacromodel(enc, other); !errors.Is(err, ErrCodec) {
		t.Fatalf("stream accepted against a mismatched library: %v", err)
	}
}

// TestKeyVarROMContentAddress: identical libraries share one key; any
// bit of content — a matrix value, the parameter list, the
// characterization step — changes it.
func TestKeyVarROMContentAddress(t *testing.T) {
	a, b := varLadder(t, 8, 3), varLadder(t, 8, 3)
	ka := KeyVarROM(a)
	if len(ka) != 64 {
		t.Fatalf("key %q is not 64 hex chars", ka)
	}
	if kb := KeyVarROM(b); kb != ka {
		t.Fatalf("identical libraries key differently: %s vs %s", ka, kb)
	}
	b.Cr0.Set(0, 0, b.Cr0.At(0, 0)*(1+1e-15))
	if kb := KeyVarROM(b); kb == ka {
		t.Fatal("a one-ulp matrix change did not change the key")
	}
	c := varLadder(t, 8, 3)
	c.Delta += 1e-6
	if kc := KeyVarROM(c); kc == ka {
		t.Fatal("changing the characterization step did not change the key")
	}
	d := varLadder(t, 9, 3)
	if kd := KeyVarROM(d); kd == ka {
		t.Fatal("a different ladder keyed identically")
	}
}
