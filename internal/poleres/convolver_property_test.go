package poleres

import (
	"math"
	"testing"
	"testing/quick"

	"lcsim/internal/mat"
)

// randomStableModel builds a deterministic stable macromodel from a seed.
func randomStableModel(seed int64, np int) *Macromodel {
	m := &Macromodel{Np: np, D0: mat.NewDense(np, np)}
	s := uint64(seed)*2654435761 + 1
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1000)/1000 - 0.5
	}
	for i := 0; i < np; i++ {
		m.D0.Set(i, i, 1+next())
	}
	for k := 0; k < 3; k++ {
		p := complex(-1e9*(1+2*math.Abs(next())), 0)
		res := mat.NewCDense(np, np)
		for i := 0; i < np; i++ {
			for j := 0; j < np; j++ {
				res.Set(i, j, complex(-real(p)*(0.5+next()), 0)) // positive DC-ish
			}
		}
		m.Poles = append(m.Poles, p)
		m.Res = append(m.Res, res)
	}
	return m
}

// Property: superposition — the convolver response to i1+i2 equals the sum
// of the separate responses (it is an LTI operator).
func TestConvolverSuperpositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := randomStableModel(seed, 2)
		h := 1e-11
		mk := func() *Convolver {
			c, err := NewConvolver(m, h)
			if err != nil {
				return nil
			}
			return c
		}
		c1, c2, c12 := mk(), mk(), mk()
		if c1 == nil {
			return true
		}
		i1 := []float64{1e-3, 0}
		i2 := []float64{0, -2e-3}
		both := []float64{1e-3, -2e-3}
		for step := 0; step < 20; step++ {
			v1 := c1.Advance(i1)
			v2 := c2.Advance(i2)
			v12 := c12.Advance(both)
			for p := 0; p < 2; p++ {
				if math.Abs(v12[p]-(v1[p]+v2[p])) > 1e-9*(1+math.Abs(v12[p])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: time invariance — delaying the input by k steps delays the
// output by k steps.
func TestConvolverTimeInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := randomStableModel(seed, 1)
		h := 2e-11
		c1, err := NewConvolver(m, h)
		if err != nil {
			return true
		}
		c2, _ := NewConvolver(m, h)
		const delay = 5
		const steps = 30
		drive := func(step int) []float64 {
			if step >= 3 {
				return []float64{1e-3}
			}
			return []float64{0}
		}
		var out1, out2 []float64
		for s := 0; s < steps; s++ {
			out1 = append(out1, c1.Advance(drive(s))[0])
		}
		for s := 0; s < steps+delay; s++ {
			out2 = append(out2, c2.Advance(drive(s - delay))[0])
		}
		for s := 0; s < steps; s++ {
			if math.Abs(out1[s]-out2[s+delay]) > 1e-12+1e-9*math.Abs(out1[s]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the DC steady state of Advance with constant current equals
// DCZ·i for any stable model.
func TestConvolverDCSteadyStateProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := randomStableModel(seed, 2)
		// Slowest pole sets the settling horizon.
		slowest := 0.0
		for _, p := range m.Poles {
			tau := -1 / real(p)
			if tau > slowest {
				slowest = tau
			}
		}
		h := slowest / 50
		c, err := NewConvolver(m, h)
		if err != nil {
			return true
		}
		i := []float64{1e-3, 0.5e-3}
		c.InitDC(i)
		v := c.Advance(i)
		want := mat.MulVec(m.DCZ(), i)
		for p := 0; p < 2; p++ {
			if math.Abs(v[p]-want[p]) > 1e-6*(1+math.Abs(want[p])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
