package poleres

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"

	"lcsim/internal/mat"
	"lcsim/internal/mor"
)

// ErrCodec reports a VarMacromodel byte stream that cannot be decoded:
// truncated, wrong magic/version, or inconsistent with the live VarROM
// it is being rebound to. Callers fall back to re-running ExtractVar.
var ErrCodec = errors.New("poleres: cannot decode VarMacromodel")

// varmacMagic marks an encoded VarMacromodel; the trailing byte is the
// format version. Every float is serialized as its exact IEEE-754 bit
// pattern (little-endian), so decode(encode(vm)) reproduces the model
// bit for bit — the property the cross-run model cache's "warm run
// matches cold run exactly" contract rests on.
const varmacMagic = "lcsim-varmac\x01"

// KeyVarROM returns the content address of a variational ROM library:
// a SHA-256 over its dimensions, parameter list, characterization step
// and the exact bits of every nominal and sensitivity matrix. The
// VarROM is a deterministic function of (tech, geometry, cell chain,
// load, extraction order), so this key subsumes all of them — two
// stages that reduce to bit-identical libraries share one macromodel,
// and any change to the inputs changes the key.
func KeyVarROM(vrom *mor.VarROM) string {
	h := sha256.New()
	var b [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }
	ws := func(s string) {
		wu(uint64(len(s)))
		h.Write([]byte(s))
	}
	wm := func(m *mat.Dense) {
		wu(uint64(m.Rows()))
		wu(uint64(m.Cols()))
		for i := 0; i < m.Rows(); i++ {
			for _, v := range m.Row(i) {
				wf(v)
			}
		}
	}
	ws("lcsim-varrom-key-v1")
	wu(uint64(vrom.Np))
	wu(uint64(vrom.Q))
	wf(vrom.Delta)
	wu(uint64(len(vrom.Params)))
	for _, p := range vrom.Params {
		ws(p)
	}
	wm(vrom.Gr0)
	wm(vrom.Cr0)
	for _, p := range vrom.Params {
		wm(vrom.DGr[p])
		wm(vrom.DCr[p])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// codecWriter serializes the fixed little-endian exact-bits layout.
type codecWriter struct{ buf []byte }

func (w *codecWriter) u64(v uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *codecWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *codecWriter) c128(v complex128) {
	w.f64(real(v))
	w.f64(imag(v))
}
func (w *codecWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *codecWriter) dense(m *mat.Dense) {
	w.u64(uint64(m.Rows()))
	w.u64(uint64(m.Cols()))
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.Row(i) {
			w.f64(v)
		}
	}
}
func (w *codecWriter) cdense(m *mat.CDense) {
	w.u64(uint64(m.Rows()))
	w.u64(uint64(m.Cols()))
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.Row(i) {
			w.c128(v)
		}
	}
}

// codecReader mirrors codecWriter; every method reports truncation.
type codecReader struct {
	buf []byte
	err error
}

func (r *codecReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = fmt.Errorf("%w: truncated", ErrCodec)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}
func (r *codecReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *codecReader) c128() complex128 {
	re := r.f64()
	im := r.f64()
	return complex(re, im)
}
func (r *codecReader) str() string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)) < n {
		r.err = fmt.Errorf("%w: truncated string", ErrCodec)
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// dim reads a matrix dimension pair, guarding against absurd sizes from
// a corrupted stream before any allocation happens.
func (r *codecReader) dim() (int, int) {
	rows, cols := r.u64(), r.u64()
	const maxDim = 1 << 20
	if r.err == nil && (rows > maxDim || cols > maxDim) {
		r.err = fmt.Errorf("%w: implausible matrix dimension %dx%d", ErrCodec, rows, cols)
	}
	if r.err != nil {
		return 0, 0
	}
	return int(rows), int(cols)
}
func (r *codecReader) dense() *mat.Dense {
	rows, cols := r.dim()
	if r.err != nil {
		return nil
	}
	m := mat.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = r.f64()
		}
	}
	return m
}
func (r *codecReader) cdense() *mat.CDense {
	rows, cols := r.dim()
	if r.err != nil {
		return nil
	}
	m := mat.NewCDense(rows, cols)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = r.c128()
		}
	}
	return m
}

// EncodeVarMacromodel serializes a characterized variational macromodel
// for the cross-run model cache. The unexported gr0/dgr references into
// the source VarROM are deliberately NOT serialized: they are rebound to
// the live library by DecodeVarMacromodel, which is what makes a cached
// model safe to share across processes.
func EncodeVarMacromodel(vm *VarMacromodel) ([]byte, error) {
	w := &codecWriter{buf: make([]byte, 0, 1<<12)}
	w.buf = append(w.buf, varmacMagic...)
	w.u64(uint64(vm.Np))
	w.u64(uint64(len(vm.Params)))
	for _, p := range vm.Params {
		w.str(p)
	}
	w.dense(vm.Nominal.D0)
	w.u64(uint64(len(vm.Nominal.Poles)))
	for _, p := range vm.Nominal.Poles {
		w.c128(p)
	}
	for _, res := range vm.Nominal.Res {
		w.cdense(res)
	}
	for _, prm := range vm.Params {
		dp := vm.DPoles[prm]
		if len(dp) != len(vm.Nominal.Poles) {
			return nil, fmt.Errorf("poleres: encode: DPoles[%s] has %d entries for %d poles", prm, len(dp), len(vm.Nominal.Poles))
		}
		for _, v := range dp {
			w.c128(v)
		}
		for _, res := range vm.DRes[prm] {
			w.cdense(res)
		}
		w.dense(vm.DD0[prm])
	}
	return w.buf, nil
}

// DecodeVarMacromodel reconstructs a macromodel from EncodeVarMacromodel
// bytes and rebinds it to the live library vrom: the decoded model's DC
// correction (fixDC) needs the library's Gr0/DGr matrices, which are not
// part of the stream. The stream must describe the same library — same
// port count and parameter list — or ErrCodec is returned and the caller
// should re-extract.
func DecodeVarMacromodel(data []byte, vrom *mor.VarROM) (*VarMacromodel, error) {
	if len(data) < len(varmacMagic) || string(data[:len(varmacMagic)]) != varmacMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCodec)
	}
	r := &codecReader{buf: data[len(varmacMagic):]}
	np := int(r.u64())
	nparams := int(r.u64())
	if r.err != nil {
		return nil, r.err
	}
	if np != vrom.Np {
		return nil, fmt.Errorf("%w: stream has %d ports, library has %d", ErrCodec, np, vrom.Np)
	}
	if nparams != len(vrom.Params) {
		return nil, fmt.Errorf("%w: stream has %d params, library has %d", ErrCodec, nparams, len(vrom.Params))
	}
	params := make([]string, nparams)
	for i := range params {
		params[i] = r.str()
		if r.err != nil {
			return nil, r.err
		}
		if params[i] != vrom.Params[i] {
			return nil, fmt.Errorf("%w: stream param %q, library param %q", ErrCodec, params[i], vrom.Params[i])
		}
	}
	nom := &Macromodel{Np: np, D0: r.dense()}
	npoles := int(r.u64())
	if r.err != nil {
		return nil, r.err
	}
	if npoles < 0 || npoles > 1<<20 {
		return nil, fmt.Errorf("%w: implausible pole count %d", ErrCodec, npoles)
	}
	nom.Poles = make([]complex128, npoles)
	for k := range nom.Poles {
		nom.Poles[k] = r.c128()
	}
	nom.Res = make([]*mat.CDense, npoles)
	for k := range nom.Res {
		nom.Res[k] = r.cdense()
	}
	vm := &VarMacromodel{
		Np:      np,
		Params:  params,
		Nominal: nom,
		DPoles:  make(map[string][]complex128, nparams),
		DRes:    make(map[string][]*mat.CDense, nparams),
		DD0:     make(map[string]*mat.Dense, nparams),
		gr0:     vrom.Gr0,
		dgr:     vrom.DGr,
	}
	for _, prm := range params {
		dp := make([]complex128, npoles)
		for k := range dp {
			dp[k] = r.c128()
		}
		dres := make([]*mat.CDense, npoles)
		for k := range dres {
			dres[k] = r.cdense()
		}
		vm.DPoles[prm] = dp
		vm.DRes[prm] = dres
		vm.DD0[prm] = r.dense()
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(r.buf))
	}
	return vm, nil
}
