package poleres

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"lcsim/internal/circuit"
	"lcsim/internal/mat"
	"lcsim/internal/mor"
)

// varLadder builds a variational RC ladder with two global parameters:
// rw scales the series resistances (±20% at w=±1), cw the shunt caps.
func varLadder(t *testing.T, nSeg, order int) *mor.VarROM {
	t.Helper()
	nl := circuit.New()
	prev := "in"
	for k := 1; k <= nSeg; k++ {
		n := "n" + string(rune('a'+k%26)) + string(rune('0'+k/26))
		nl.AddR("R"+n, prev, n, circuit.VarV(10.0, "rw", 2.0))
		nl.AddC("C"+n, n, "0", circuit.VarV(1e-12, "cw", 2e-13))
		prev = n
	}
	nl.MarkPort("in")
	sys, err := circuit.AssembleVariational(nl)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPortConductance([]float64{1e-3}); err != nil {
		t.Fatal(err)
	}
	vrom, err := mor.BuildVariational(sys, mor.BuildOptions{Order: order})
	if err != nil {
		t.Fatal(err)
	}
	return vrom
}

// mustAt evaluates vm.At and fails the test on error.
func mustAt(t *testing.T, vm *VarMacromodel, w map[string]float64) *Macromodel {
	t.Helper()
	mac, err := vm.At(w)
	if err != nil {
		t.Fatal(err)
	}
	return mac
}

// mustEvalInto evaluates vm.EvalInto and fails the test on error.
func mustEvalInto(t *testing.T, vm *VarMacromodel, me *MacroEval, w map[string]float64) *Macromodel {
	t.Helper()
	mac, err := vm.EvalInto(me, w)
	if err != nil {
		t.Fatal(err)
	}
	return mac
}

// zErr returns the worst relative difference between the two macromodels'
// port impedances over a frequency sweep spanning the ladder's dynamics.
func zErr(a, b *Macromodel) float64 {
	worst := 0.0
	for _, f := range []float64{0, 1e7, 1e8, 1e9, 1e10} {
		s := complex(0, 2*math.Pi*f)
		za, zb := a.Z(s), b.Z(s)
		for i := 0; i < a.Np; i++ {
			for j := 0; j < a.Np; j++ {
				d := cmplx.Abs(za.At(i, j)-zb.At(i, j)) / (cmplx.Abs(zb.At(i, j)) + 1e-12)
				if d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

func TestExtractVarNominalMatchesExtract(t *testing.T) {
	vrom := varLadder(t, 12, 4)
	vm, err := ExtractVar(vrom)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Extract(vrom.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if len(vm.Nominal.Poles) != len(exact.Poles) {
		t.Fatalf("nominal pole count %d != exact %d", len(vm.Nominal.Poles), len(exact.Poles))
	}
	if e := zErr(mustAt(t, vm, nil), exact); e > 1e-8 {
		t.Fatalf("variational nominal impedance differs from exact extraction by %.3g", e)
	}
}

func TestExtractVarFirstOrderConvergence(t *testing.T) {
	vrom := varLadder(t, 12, 4)
	vm, err := ExtractVar(vrom)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(d float64) float64 {
		w := map[string]float64{"rw": d, "cw": -d}
		exact, err := Extract(vrom.At(w))
		if err != nil {
			t.Fatal(err)
		}
		return zErr(mustAt(t, vm, w), exact)
	}
	// Both models share the identical first-order ROM evaluation, so the
	// macromodel linearization error is the only difference and must
	// vanish quadratically in the sample magnitude.
	eBig, eSmall := errAt(0.2), errAt(0.1)
	if eBig > 0.02 {
		t.Fatalf("variational macromodel error %.3g at w=0.2 exceeds 2%%", eBig)
	}
	if eBig > 1e-10 && eSmall > 0.5*eBig {
		t.Fatalf("error does not contract: err(0.1)=%.3g vs err(0.2)=%.3g (want O(δ²))", eSmall, eBig)
	}
}

func TestEvalIntoMatchesAtAndAllocFree(t *testing.T) {
	vrom := varLadder(t, 10, 4)
	vm, err := ExtractVar(vrom)
	if err != nil {
		t.Fatal(err)
	}
	w := map[string]float64{"rw": 0.3, "cw": -0.2}
	want := mustAt(t, vm, w)
	me := vm.NewEval()
	got := mustEvalInto(t, vm, me, w)
	if e := zErr(got, want); e > 1e-12 {
		t.Fatalf("EvalInto differs from At by %.3g", e)
	}
	// Evaluating a different sample into the same buffer must fully
	// overwrite the previous state.
	mustEvalInto(t, vm, me, map[string]float64{"rw": -1})
	got = mustEvalInto(t, vm, me, w)
	if e := zErr(got, want); e > 1e-12 {
		t.Fatalf("EvalInto not idempotent across samples: %.3g", e)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		vm.EvalInto(me, w)
	}); allocs != 0 {
		t.Fatalf("EvalInto allocates %v objects per call, want 0", allocs)
	}
}

// synthVarROM builds a 2-state ROM whose T = −Gr⁻¹Cr is a rotation-like
// matrix with an exactly conjugate eigenvalue pair, plus a sensitivity
// that perturbs both the rotation angle and radius.
func synthVarROM() *mor.VarROM {
	gr := mat.Identity(2)
	// T = [[a, b], [−b, a]] has eigenvalues a ± bi; poles 1/λ are stable
	// for a < 0. Cr = −T (since Gr = I).
	a, b := -1e-10, 5e-10
	cr := mat.NewDense(2, 2)
	cr.Set(0, 0, -a)
	cr.Set(0, 1, -b)
	cr.Set(1, 0, b)
	cr.Set(1, 1, -a)
	dgr := mat.NewDense(2, 2) // zero
	dcr := mat.NewDense(2, 2)
	dcr.Set(0, 0, 0.3e-10)
	dcr.Set(0, 1, -0.8e-10)
	dcr.Set(1, 0, 0.8e-10)
	dcr.Set(1, 1, 0.3e-10)
	return &mor.VarROM{
		Np: 1, Q: 2, Params: []string{"p"},
		Gr0: gr, Cr0: cr,
		DGr: map[string]*mat.Dense{"p": dgr},
		DCr: map[string]*mat.Dense{"p": dcr},
	}
}

func TestExtractVarKeepsConjugatePairsExact(t *testing.T) {
	vrom := synthVarROM()
	vm, err := ExtractVar(vrom)
	if err != nil {
		t.Fatal(err)
	}
	if len(vm.Nominal.Poles) != 2 {
		t.Fatalf("want 2 poles, got %d", len(vm.Nominal.Poles))
	}
	for _, wv := range []float64{0, 0.5, -1, 0.123456} {
		mac := mustAt(t, vm, map[string]float64{"p": wv})
		p0, p1 := mac.Poles[0], mac.Poles[1]
		if imag(p0) == 0 {
			t.Fatalf("expected a complex pair at w=%g, got %v", wv, mac.Poles)
		}
		if p1 != cmplx.Conj(p0) {
			t.Fatalf("pair not exactly conjugate at w=%g: %v vs conj %v", wv, p1, cmplx.Conj(p0))
		}
		// The first-order perturbed pair must stay consistent with an
		// exact extraction of the perturbed ROM to first order.
		if wv == 0 {
			continue
		}
		exact, err := Extract(vrom.At(map[string]float64{"p": wv}))
		if err != nil {
			t.Fatal(err)
		}
		if e := zErr(mac, exact); e > 0.10 {
			t.Fatalf("synthetic pair impedance error %.3g at w=%g", e, wv)
		}
	}
}

func TestEvalIntoReportsSingularGr(t *testing.T) {
	// DGr["p"] = −Gr0 makes Gr(w) = (1−w)·I exactly singular at w=1: the
	// DC correction's refactorization must fail. This used to be a silent
	// return (fixDC bailed out and the caller got a macromodel with an
	// uncorrected, wrong DC level); it must now surface ErrSingularGr.
	vrom := synthVarROM()
	dgr := mat.NewDense(2, 2)
	dgr.Set(0, 0, -1)
	dgr.Set(1, 1, -1)
	vrom.DGr = map[string]*mat.Dense{"p": dgr}
	vm, err := ExtractVar(vrom)
	if err != nil {
		t.Fatal(err)
	}
	me := vm.NewEval()
	if _, err := vm.EvalInto(me, map[string]float64{"p": 1}); !errors.Is(err, ErrSingularGr) {
		t.Fatalf("EvalInto at singular Gr(w): err = %v, want ErrSingularGr", err)
	}
	if _, err := vm.At(map[string]float64{"p": 1}); !errors.Is(err, ErrSingularGr) {
		t.Fatalf("At at singular Gr(w): err = %v, want ErrSingularGr", err)
	}
	// Away from the singular sample the same buffers must still work.
	if _, err := vm.EvalInto(me, map[string]float64{"p": 0.1}); err != nil {
		t.Fatalf("EvalInto at a healthy sample after the failure: %v", err)
	}
}

func TestExtractVarRejectsDegenerateSpectrum(t *testing.T) {
	// Two exactly equal diagonal time constants: λ₀ = λ₁. ExtractVar must
	// refuse (repeated eigenvalues are fine only when exactly equal — the
	// dangerous case is a tiny nonzero gap).
	gr := mat.Identity(2)
	cr := mat.NewDense(2, 2)
	cr.Set(0, 0, 1e-10)
	cr.Set(0, 1, 1e-22) // break exact equality by a sub-gap amount
	cr.Set(1, 1, 1e-10)
	dm := mat.NewDense(2, 2)
	vrom := &mor.VarROM{
		Np: 1, Q: 2, Params: []string{"p"},
		Gr0: gr, Cr0: cr,
		DGr: map[string]*mat.Dense{"p": dm},
		DCr: map[string]*mat.Dense{"p": dm.Clone()},
	}
	if _, err := ExtractVar(vrom); err == nil {
		t.Fatal("near-degenerate spectrum must be rejected")
	}
}
