package poleres

import (
	"fmt"
	"math/cmplx"

	"lcsim/internal/mat"
)

// Convolver evaluates the time-domain port voltages of a pole/residue
// macromodel driven by piecewise-linear port currents, using exact
// recursive convolution per pole:
//
//	v(t+h) = Hist(t) + Zeff·i(t+h)
//
// where Zeff is constant for a fixed step h. This linear splitting is what
// lets TETA's Successive-Chords iteration solve each timestep with one
// small pre-factored system.
//
// Internally the per-pole recursion is laid out as flat real/imaginary
// planes with the residue·coefficient products pre-combined, and conjugate
// pole pairs are evaluated once (the partner's contribution is the
// conjugate, so the pair sums to twice the real part). Both transforms cut
// the per-timestep cost of History/Advance — the dominant terms in the
// sample evaluation profile — without changing the mathematics.
type Convolver struct {
	m  *Macromodel
	h  float64
	np int

	// Memo key for the recurrence coefficients: the exact pole list and
	// step the exp/c0/c1 terms were last computed for. Reconfigure with an
	// equal (poles, h) — the common case when only residues or only device
	// parameters move between samples — skips recomputing them.
	allPoles []complex128

	// Per processed pole (one per conjugate pair, plus real/unpaired).
	nproc  int
	src    []int     // index into m.Poles of each processed pole
	weight []float64 // 2 for a conjugate-pair representative, else 1
	isReal []bool    // pole on the real axis: imaginary planes identically 0
	exp    []complex128
	c0, c1 []complex128

	// Flattened coefficient planes, indexed [(k*np+i)*np+j]:
	// rc0 = Res·c0, rc1 = Res·c1, rp = −Res/p (for InitDC), and the
	// fused-step coefficient g = exp·rc1 + rc0 that advances the rotated
	// state directly: p(t+h) = exp·p(t) + g·i(t).
	rc0Re, rc0Im []float64
	rc1Re, rc1Im []float64
	rpRe, rpIm   []float64
	gRe, gIm     []float64

	// Convolution state, indexed [k*np+i].
	sRe, sIm []float64
	iPrev    []float64

	// Pending rotated state p = e·s + (R·c0)·iPrev for the upcoming step.
	// Once HistoryInto has established it, the convolver stays in this
	// representation: AdvanceInto folds the committed currents with the
	// fused g coefficient (one state sweep per timestep instead of two),
	// and HistoryInto reduces to summing the real plane. The s planes are
	// refreshed only on the dst-returning Advance path, so external
	// callers that never use HistoryInto observe the legacy recursion.
	pRe, pIm []float64
	pending  bool

	zeff *mat.Dense
}

// NewConvolver prepares recursive-convolution evaluation with a fixed
// timestep h. The macromodel must be stable (call Stabilize first).
func NewConvolver(m *Macromodel, h float64) (*Convolver, error) {
	c := &Convolver{}
	if err := c.Reconfigure(m, h); err != nil {
		return nil, err
	}
	return c, nil
}

// grow reslices buf to n elements, reusing its backing array when the
// capacity allows.
func grow[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}

// Reconfigure re-derives the recursive-convolution recurrence for a (new)
// macromodel and timestep, reusing the receiver's buffers. The convolution
// state is reset. The exp/c0/c1 recurrence coefficients are memoized on
// the exact (poles, h) pair, so evaluations whose sample moves only the
// residues — or nominal re-evaluations — skip the transcendental work.
func (c *Convolver) Reconfigure(m *Macromodel, h float64) error {
	if h <= 0 {
		return fmt.Errorf("poleres: timestep must be positive, got %g", h)
	}
	if !m.IsStable() {
		return fmt.Errorf("poleres: macromodel has %d unstable poles; stabilize before simulation", len(m.UnstablePoles()))
	}
	np := m.Np
	n := len(m.Poles)
	samePoles := h == c.h && len(c.allPoles) == n && c.np == np
	if samePoles {
		for k, p := range m.Poles {
			if c.allPoles[k] != p {
				samePoles = false
				break
			}
		}
	}
	c.m = m
	c.h = h
	c.np = np
	if !samePoles {
		c.allPoles = append(c.allPoles[:0], m.Poles...)
		c.src = c.src[:0]
		c.weight = c.weight[:0]
		c.isReal = c.isReal[:0]
		c.exp = c.exp[:0]
		c.c0 = c.c0[:0]
		c.c1 = c.c1[:0]
		for k := 0; k < n; k++ {
			p := m.Poles[k]
			w := 1.0
			if imag(p) != 0 && k+1 < n && m.Poles[k+1] == cmplx.Conj(p) {
				// Conjugate pair: evaluate the representative only; the
				// partner's state is the exact conjugate so the pair's
				// (real) contribution is 2·Re of the representative's.
				w = 2
			}
			e := cmplx.Exp(p * complex(h, 0))
			// ∫₀ʰ e^{p(h−τ)}·i(τ) dτ with linear i: i0·(a−b) + i1·b,
			// a = (e−1)/p, b = (e−1)/(p²h) − 1/p.
			a := (e - 1) / p
			b := (e-1)/(p*p*complex(h, 0)) - 1/p
			c.src = append(c.src, k)
			c.weight = append(c.weight, w)
			c.isReal = append(c.isReal, imag(p) == 0)
			c.exp = append(c.exp, e)
			c.c0 = append(c.c0, a-b)
			c.c1 = append(c.c1, b)
			if w == 2 {
				k++
			}
		}
		c.nproc = len(c.src)
	}
	plane := c.nproc * np * np
	c.rc0Re = grow(c.rc0Re, plane)
	c.rc0Im = grow(c.rc0Im, plane)
	c.rc1Re = grow(c.rc1Re, plane)
	c.rc1Im = grow(c.rc1Im, plane)
	c.rpRe = grow(c.rpRe, plane)
	c.rpIm = grow(c.rpIm, plane)
	c.gRe = grow(c.gRe, plane)
	c.gIm = grow(c.gIm, plane)
	c.sRe = grow(c.sRe, c.nproc*np)
	c.sIm = grow(c.sIm, c.nproc*np)
	c.pRe = grow(c.pRe, c.nproc*np)
	c.pIm = grow(c.pIm, c.nproc*np)
	c.iPrev = grow(c.iPrev, np)
	if c.zeff == nil || c.zeff.Rows() != np {
		c.zeff = mat.NewDense(np, np)
	}
	c.zeff.CopyFrom(m.D0)
	for k := 0; k < c.nproc; k++ {
		r := m.Res[c.src[k]]
		p := m.Poles[c.src[k]]
		c0, c1 := c.c0[k], c.c1[k]
		e := c.exp[k]
		w := c.weight[k]
		base := k * np * np
		for i := 0; i < np; i++ {
			row := r.Row(i)
			zr := c.zeff.Row(i)
			off := base + i*np
			for j := 0; j < np; j++ {
				v := row[j]
				v0 := v * c0
				v1 := v * c1
				vp := -v / p
				vg := e*v1 + v0
				c.rc0Re[off+j] = real(v0)
				c.rc0Im[off+j] = imag(v0)
				c.rc1Re[off+j] = real(v1)
				c.rc1Im[off+j] = imag(v1)
				c.rpRe[off+j] = real(vp)
				c.rpIm[off+j] = imag(vp)
				c.gRe[off+j] = real(vg)
				c.gIm[off+j] = imag(vg)
				zr[j] += w * real(v1)
			}
		}
	}
	c.Reset()
	return nil
}

// EffZ returns the Np×Np effective impedance dv(t+h)/di(t+h).
func (c *Convolver) EffZ() *mat.Dense { return c.zeff.Clone() }

// EffZView returns the effective impedance without cloning. The matrix is
// owned by the convolver: treat it as read-only, valid until the next
// Reconfigure.
func (c *Convolver) EffZView() *mat.Dense { return c.zeff }

// History returns the history vector Hist(t) for the pending step: the
// port voltages that would appear at t+h if i(t+h) were zero.
func (c *Convolver) History() []float64 {
	hist := make([]float64, c.np)
	c.HistoryInto(hist)
	return hist
}

// HistoryInto computes the history vector into dst (length Np) without
// allocating — the per-timestep entry point of Stage.Run's SC loop. The
// first call rotates the s state into the pending representation; from
// then on AdvanceInto keeps the pending state current across steps and
// HistoryInto only sums its real plane.
func (c *Convolver) HistoryInto(dst []float64) {
	np := c.np
	if len(dst) != np {
		panic(fmt.Sprintf("poleres: HistoryInto got %d ports, want %d", len(dst), np))
	}
	for i := range dst {
		dst[i] = 0
	}
	if c.pending {
		for k := 0; k < c.nproc; k++ {
			w := c.weight[k]
			p := c.pRe[k*np : k*np+np]
			for i, pv := range p {
				dst[i] += w * pv
			}
		}
		return
	}
	iPrev := c.iPrev
	for k := 0; k < c.nproc; k++ {
		er, ei := real(c.exp[k]), imag(c.exp[k])
		w := c.weight[k]
		base := k * np * np
		soff := k * np
		if c.isReal[k] {
			for i := 0; i < np; i++ {
				acc := er * c.sRe[soff+i]
				row := c.rc0Re[base+i*np : base+i*np+np]
				for j, ip := range iPrev {
					acc += row[j] * ip
				}
				c.pRe[soff+i] = acc
				c.pIm[soff+i] = 0
				dst[i] += w * acc
			}
			continue
		}
		for i := 0; i < np; i++ {
			sr, si := c.sRe[soff+i], c.sIm[soff+i]
			xr := er*sr - ei*si
			xi := er*si + ei*sr
			off := base + i*np
			r0r := c.rc0Re[off : off+np]
			r0i := c.rc0Im[off : off+np]
			for j, ip := range iPrev {
				xr += r0r[j] * ip
				xi += r0i[j] * ip
			}
			c.pRe[soff+i] = xr
			c.pIm[soff+i] = xi
			dst[i] += w * xr
		}
	}
	c.pending = true
}

// Advance commits the step with final port currents i1 and returns the
// port voltages at t+h.
func (c *Convolver) Advance(i1 []float64) []float64 {
	v := make([]float64, c.np)
	c.AdvanceInto(v, i1)
	return v
}

// AdvanceInto commits the step with final port currents i1, writing the
// port voltages at t+h into dst. dst may be nil when the caller already
// knows the converged voltages (the SC loop does) and only needs the
// state update. No allocation happens.
func (c *Convolver) AdvanceInto(dst, i1 []float64) {
	np := c.np
	if len(i1) != np {
		panic(fmt.Sprintf("poleres: Advance got %d currents for %d ports", len(i1), np))
	}
	if dst != nil {
		for i := range dst {
			dst[i] = 0
		}
	}
	if c.pending {
		// Fused step: the pending state p(t) already folded in iPrev, so
		// p(t+h) = exp·p(t) + g·i1 advances the recursion in one sweep.
		// The convolver stays in the pending representation — the next
		// HistoryInto just sums p. When the caller wants the committed
		// voltages, s(t) = p(t) + rc1·i1 is produced (and stored, keeping
		// the s planes fresh for the public Advance-only protocol).
		for k := 0; k < c.nproc; k++ {
			w := c.weight[k]
			er, ei := real(c.exp[k]), imag(c.exp[k])
			base := k * np * np
			soff := k * np
			if c.isReal[k] {
				for i := 0; i < np; i++ {
					off := base + i*np
					g := c.gRe[off : off+np]
					pr := c.pRe[soff+i]
					x := er * pr
					for j, iv := range i1 {
						x += g[j] * iv
					}
					if dst != nil {
						s := pr
						r1 := c.rc1Re[off : off+np]
						for j, iv := range i1 {
							s += r1[j] * iv
						}
						c.sRe[soff+i] = s
						dst[i] += w * s
					}
					c.pRe[soff+i] = x
				}
				continue
			}
			for i := 0; i < np; i++ {
				off := base + i*np
				gr := c.gRe[off : off+np]
				gi := c.gIm[off : off+np]
				pr, pi := c.pRe[soff+i], c.pIm[soff+i]
				xr := er*pr - ei*pi
				xi := er*pi + ei*pr
				for j, iv := range i1 {
					xr += gr[j] * iv
					xi += gi[j] * iv
				}
				if dst != nil {
					sr, si := pr, pi
					r1r := c.rc1Re[off : off+np]
					r1i := c.rc1Im[off : off+np]
					for j, iv := range i1 {
						sr += r1r[j] * iv
						si += r1i[j] * iv
					}
					c.sRe[soff+i] = sr
					c.sIm[soff+i] = si
					dst[i] += w * sr
				}
				c.pRe[soff+i] = xr
				c.pIm[soff+i] = xi
			}
		}
		c.finishAdvance(dst, i1)
		return
	}
	iPrev := c.iPrev
	for k := 0; k < c.nproc; k++ {
		er, ei := real(c.exp[k]), imag(c.exp[k])
		w := c.weight[k]
		base := k * np * np
		soff := k * np
		if c.isReal[k] {
			// Real pole: imaginary planes are identically zero.
			for i := 0; i < np; i++ {
				off := base + i*np
				r0 := c.rc0Re[off : off+np]
				r1 := c.rc1Re[off : off+np]
				x := er * c.sRe[soff+i]
				for j, ip := range iPrev {
					x += r0[j] * ip
				}
				for j, iv := range i1 {
					x += r1[j] * iv
				}
				c.sRe[soff+i] = x
				if dst != nil {
					dst[i] += w * x
				}
			}
			continue
		}
		for i := 0; i < np; i++ {
			off := base + i*np
			r0r := c.rc0Re[off : off+np]
			r0i := c.rc0Im[off : off+np]
			r1r := c.rc1Re[off : off+np]
			r1i := c.rc1Im[off : off+np]
			sr, si := c.sRe[soff+i], c.sIm[soff+i]
			xr := er*sr - ei*si
			xi := er*si + ei*sr
			for j, ip := range iPrev {
				xr += r0r[j] * ip
				xi += r0i[j] * ip
			}
			for j, iv := range i1 {
				xr += r1r[j] * iv
				xi += r1i[j] * iv
			}
			c.sRe[soff+i] = xr
			c.sIm[soff+i] = xi
			if dst != nil {
				dst[i] += w * xr
			}
		}
	}
	c.finishAdvance(dst, i1)
}

// finishAdvance applies the instantaneous D0 term and commits i1 as the
// previous-step current.
func (c *Convolver) finishAdvance(dst, i1 []float64) {
	if dst != nil {
		for i := 0; i < c.np; i++ {
			row := c.m.D0.Row(i)
			s := dst[i]
			for j, iv := range i1 {
				s += row[j] * iv
			}
			dst[i] = s
		}
	}
	copy(c.iPrev, i1)
}

// SetInitialCurrent sets i(0) for the first interval (the convolver
// otherwise assumes the port currents ramp up from zero over the first
// step).
func (c *Convolver) SetInitialCurrent(i0 []float64) {
	if len(i0) != c.np {
		panic(fmt.Sprintf("poleres: SetInitialCurrent got %d currents for %d ports", len(i0), c.np))
	}
	copy(c.iPrev, i0)
	c.pending = false
}

// InitDC presets the convolution states to the steady-state response of
// constant port currents idc (x_k = −R_k·idc/p_k), so the transient
// starts from the DC operating point rather than a relaxed network.
func (c *Convolver) InitDC(idc []float64) {
	np := c.np
	if len(idc) != np {
		panic(fmt.Sprintf("poleres: InitDC got %d currents for %d ports", len(idc), np))
	}
	for k := 0; k < c.nproc; k++ {
		base := k * np * np
		soff := k * np
		for i := 0; i < np; i++ {
			off := base + i*np
			rr := c.rpRe[off : off+np]
			ri := c.rpIm[off : off+np]
			ar, ai := 0.0, 0.0
			for j, iv := range idc {
				ar += rr[j] * iv
				ai += ri[j] * iv
			}
			c.sRe[soff+i] = ar
			c.sIm[soff+i] = ai
		}
	}
	copy(c.iPrev, idc)
	c.pending = false
}

// Reset clears the convolution history.
func (c *Convolver) Reset() {
	for i := range c.sRe {
		c.sRe[i] = 0
		c.sIm[i] = 0
	}
	for i := range c.iPrev {
		c.iPrev[i] = 0
	}
	c.pending = false
}
