package poleres

import (
	"fmt"
	"math/cmplx"

	"lcsim/internal/mat"
)

// Convolver evaluates the time-domain port voltages of a pole/residue
// macromodel driven by piecewise-linear port currents, using exact
// recursive convolution per pole:
//
//	v(t+h) = Hist(t) + Zeff·i(t+h)
//
// where Zeff is constant for a fixed step h. This linear splitting is what
// lets TETA's Successive-Chords iteration solve each timestep with one
// small pre-factored system.
type Convolver struct {
	m *Macromodel
	h float64

	exp []complex128 // e^{p·h} per pole
	c0  []complex128 // weight of i(t) in the state update
	c1  []complex128 // weight of i(t+h)

	states [][]complex128 // per pole, per port
	iPrev  []float64

	zeff *mat.Dense
}

// NewConvolver prepares recursive-convolution evaluation with a fixed
// timestep h. The macromodel must be stable (call Stabilize first).
func NewConvolver(m *Macromodel, h float64) (*Convolver, error) {
	if h <= 0 {
		return nil, fmt.Errorf("poleres: timestep must be positive, got %g", h)
	}
	if !m.IsStable() {
		return nil, fmt.Errorf("poleres: macromodel has %d unstable poles; stabilize before simulation", len(m.UnstablePoles()))
	}
	c := &Convolver{m: m, h: h, iPrev: make([]float64, m.Np)}
	for _, p := range m.Poles {
		e := cmplx.Exp(p * complex(h, 0))
		// ∫₀ʰ e^{p(h−τ)}·i(τ) dτ with linear i: i0·(a−b) + i1·b,
		// a = (e−1)/p, b = (e−1)/(p²h) − 1/p.
		a := (e - 1) / p
		b := (e-1)/(p*p*complex(h, 0)) - 1/p
		c.exp = append(c.exp, e)
		c.c0 = append(c.c0, a-b)
		c.c1 = append(c.c1, b)
		c.states = append(c.states, make([]complex128, m.Np))
	}
	// Zeff = D0 + Σ_k Res_k·c1_k (real by conjugate symmetry).
	c.zeff = m.D0.Clone()
	for k, r := range m.Res {
		for i := 0; i < m.Np; i++ {
			for j := 0; j < m.Np; j++ {
				c.zeff.Add(i, j, real(r.At(i, j)*c.c1[k]))
			}
		}
	}
	return c, nil
}

// EffZ returns the Np×Np effective impedance dv(t+h)/di(t+h).
func (c *Convolver) EffZ() *mat.Dense { return c.zeff.Clone() }

// History returns the history vector Hist(t) for the pending step: the
// port voltages that would appear at t+h if i(t+h) were zero.
func (c *Convolver) History() []float64 {
	hist := make([]float64, c.m.Np)
	for k, r := range c.m.Res {
		ek := c.exp[k]
		c0 := c.c0[k]
		for i := 0; i < c.m.Np; i++ {
			acc := ek * c.states[k][i]
			for j := 0; j < c.m.Np; j++ {
				acc += r.At(i, j) * c0 * complex(c.iPrev[j], 0)
			}
			hist[i] += real(acc)
		}
	}
	return hist
}

// Advance commits the step with final port currents i1 and returns the
// port voltages at t+h.
func (c *Convolver) Advance(i1 []float64) []float64 {
	if len(i1) != c.m.Np {
		panic(fmt.Sprintf("poleres: Advance got %d currents for %d ports", len(i1), c.m.Np))
	}
	v := make([]float64, c.m.Np)
	for k, r := range c.m.Res {
		ek, c0, c1 := c.exp[k], c.c0[k], c.c1[k]
		for i := 0; i < c.m.Np; i++ {
			x := ek * c.states[k][i]
			for j := 0; j < c.m.Np; j++ {
				x += r.At(i, j) * (c0*complex(c.iPrev[j], 0) + c1*complex(i1[j], 0))
			}
			c.states[k][i] = x
			v[i] += real(x)
		}
	}
	for i := 0; i < c.m.Np; i++ {
		for j := 0; j < c.m.Np; j++ {
			v[i] += c.m.D0.At(i, j) * i1[j]
		}
	}
	copy(c.iPrev, i1)
	return v
}

// SetInitialCurrent sets i(0) for the first interval (the convolver
// otherwise assumes the port currents ramp up from zero over the first
// step).
func (c *Convolver) SetInitialCurrent(i0 []float64) {
	if len(i0) != c.m.Np {
		panic(fmt.Sprintf("poleres: SetInitialCurrent got %d currents for %d ports", len(i0), c.m.Np))
	}
	copy(c.iPrev, i0)
}

// InitDC presets the convolution states to the steady-state response of
// constant port currents idc (x_k = −R_k·idc/p_k), so the transient
// starts from the DC operating point rather than a relaxed network.
func (c *Convolver) InitDC(idc []float64) {
	if len(idc) != c.m.Np {
		panic(fmt.Sprintf("poleres: InitDC got %d currents for %d ports", len(idc), c.m.Np))
	}
	for k, r := range c.m.Res {
		p := c.m.Poles[k]
		for i := 0; i < c.m.Np; i++ {
			acc := complex(0, 0)
			for j := 0; j < c.m.Np; j++ {
				acc += r.At(i, j) * complex(idc[j], 0)
			}
			c.states[k][i] = -acc / p
		}
	}
	copy(c.iPrev, idc)
}

// Reset clears the convolution history.
func (c *Convolver) Reset() {
	for k := range c.states {
		for i := range c.states[k] {
			c.states[k][i] = 0
		}
	}
	for i := range c.iPrev {
		c.iPrev[i] = 0
	}
}
