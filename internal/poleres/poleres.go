// Package poleres converts reduced-order models to multiport pole/residue
// form (paper eqs. 13–20), applies the practical two-step stabilization —
// drop right-half-plane poles, rescale surviving residues by a common
// factor β to restore the DC behaviour (eqs. 21–23) — and evaluates the
// stabilized macromodel in the time domain by recursive convolution, the
// load representation TETA simulates against.
package poleres

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"lcsim/internal/mat"
	"lcsim/internal/mor"
)

// Macromodel is a multiport impedance in pole/residue form:
//
//	Z(s) = D0 + Σ_k Res[k] / (s − Poles[k])
//
// Complex poles appear with their conjugates so Z(s̄) = conj(Z(s)) and
// time-domain responses are real. D0 collects the direct (resistive)
// modes with zero time constant.
type Macromodel struct {
	Np    int
	D0    *mat.Dense
	Poles []complex128
	Res   []*mat.CDense // Res[k] is Np×Np, aligned with Poles[k]
}

// Extract computes the pole/residue form of a reduced model: it
// eigendecomposes T = −Gr⁻¹Cr (eq. 16) and assembles residues from the
// eigenvector rows/columns (eqs. 19–20).
func Extract(rom *mor.ROM) (*Macromodel, error) {
	q := rom.Q()
	np := rom.Np
	grLU, err := mat.FactorLU(rom.Gr)
	if err != nil {
		return nil, fmt.Errorf("poleres: Gr is singular: %w", err)
	}
	// The columns of Gr⁻¹ are assembled by triangular solves against unit
	// vectors; the same pass yields ||Gr⁻¹||₁ for the condition check, so
	// no second factorization and no explicit q×q inverse are formed.
	grInvCols := mat.NewDense(q, q) // column j in row j (transposed storage)
	e := make([]float64, q)
	norm1Inv := 0.0
	for j := 0; j < q; j++ {
		e[j] = 1
		col := grInvCols.Row(j)
		grLU.SolveInto(col, e)
		e[j] = 0
		s := 0.0
		for _, v := range col {
			s += math.Abs(v)
		}
		if s > norm1Inv {
			norm1Inv = s
		}
	}
	if cond := mat.Norm1(rom.Gr) * norm1Inv; cond > 1e14 {
		return nil, fmt.Errorf("poleres: Gr is numerically singular (cond ≈ %.2g) — the load has no DC path to ground; fold a port conductance in before reduction", cond)
	}
	t := grLU.SolveMat(rom.Cr).Scale(-1) // T = −Gr⁻¹Cr
	ed, err := mat.EigenDecompose(t)
	if err != nil {
		return nil, fmt.Errorf("poleres: eigendecomposition of T failed: %w", err)
	}
	s := ed.Vectors
	sLU, err := mat.FactorCLU(s)
	if err != nil {
		return nil, fmt.Errorf("poleres: eigenvector matrix is singular (defective T): %w", err)
	}
	// ν = S⁻¹·Gr⁻¹ (eq. 19): columns of Gr⁻¹ solved through S.
	nu := mat.NewCDense(q, q)
	col := make([]complex128, q)
	for j := 0; j < q; j++ {
		gc := grInvCols.Row(j)
		for i := 0; i < q; i++ {
			col[i] = complex(gc[i], 0)
		}
		x := sLU.Solve(col)
		for i := 0; i < q; i++ {
			nu.Set(i, j, x[i])
		}
	}
	m := &Macromodel{Np: np, D0: mat.NewDense(np, np)}
	// Scale separating "zero" eigenvalues (pure resistive modes) from
	// dynamic ones.
	lamMax := 0.0
	for _, l := range ed.Values {
		if a := cmplx.Abs(l); a > lamMax {
			lamMax = a
		}
	}
	tiny := 1e-12 * lamMax
	for k := 0; k < q; k++ {
		lam := ed.Values[k]
		// Rank-one term μ_k ν_k: μ_ik = S[i,k], ν_kj = nu[k,j].
		if cmplx.Abs(lam) <= tiny {
			// 1/(1−sλ) → 1: contributes a constant (resistive) term.
			for i := 0; i < np; i++ {
				for j := 0; j < np; j++ {
					m.D0.Add(i, j, real(s.At(i, k)*nu.At(k, j)))
				}
			}
			continue
		}
		pole := 1 / lam
		res := mat.NewCDense(np, np)
		for i := 0; i < np; i++ {
			for j := 0; j < np; j++ {
				// μν/(1−sλ) = [−μν/λ]/(s − 1/λ).
				res.Set(i, j, -s.At(i, k)*nu.At(k, j)/lam)
			}
		}
		m.Poles = append(m.Poles, pole)
		m.Res = append(m.Res, res)
	}
	return m, nil
}

// Z evaluates the macromodel impedance at complex frequency s.
func (m *Macromodel) Z(s complex128) *mat.CDense {
	out := mat.NewCDense(m.Np, m.Np)
	for i := 0; i < m.Np; i++ {
		for j := 0; j < m.Np; j++ {
			out.Set(i, j, complex(m.D0.At(i, j), 0))
		}
	}
	for k, p := range m.Poles {
		f := 1 / (s - p)
		r := m.Res[k]
		for i := 0; i < m.Np; i++ {
			for j := 0; j < m.Np; j++ {
				out.Set(i, j, out.At(i, j)+r.At(i, j)*f)
			}
		}
	}
	return out
}

// DCZ returns Z(0) = D0 − Σ Res/Poles as a real matrix (imaginary parts
// cancel across conjugate pairs).
func (m *Macromodel) DCZ() *mat.Dense {
	z := m.Z(0)
	out := mat.NewDense(m.Np, m.Np)
	for i := 0; i < m.Np; i++ {
		for j := 0; j < m.Np; j++ {
			out.Set(i, j, real(z.At(i, j)))
		}
	}
	return out
}

// UnstablePoles returns the right-half-plane poles (Re > 0), the quantity
// tabulated in the paper's Table 3.
func (m *Macromodel) UnstablePoles() []complex128 {
	var out []complex128
	for _, p := range m.Poles {
		if real(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// IsStable reports whether all poles lie in the closed left half plane.
func (m *Macromodel) IsStable() bool { return len(m.UnstablePoles()) == 0 }

// Dominant returns a reduced copy keeping the `keep` poles with the
// largest DC weight |r/p| (summed over port entries), folding the dropped
// poles' DC contribution into D0 so Z(0) is preserved — the classic
// dominant-pole truncation used to speed up long transients. Conjugate
// partners are kept together. keep >= len(Poles) returns a plain copy.
func (m *Macromodel) Dominant(keep int) *Macromodel {
	out := &Macromodel{Np: m.Np, D0: m.D0.Clone()}
	if keep >= len(m.Poles) {
		out.Poles = append(out.Poles, m.Poles...)
		for _, r := range m.Res {
			out.Res = append(out.Res, r.Clone())
		}
		return out
	}
	weight := make([]float64, len(m.Poles))
	for k, p := range m.Poles {
		for i := 0; i < m.Np; i++ {
			for j := 0; j < m.Np; j++ {
				weight[k] += cmplx.Abs(m.Res[k].At(i, j) / p)
			}
		}
	}
	// Pair conjugates so they are kept or dropped together.
	partner := make([]int, len(m.Poles))
	for k := range partner {
		partner[k] = -1
	}
	for k, p := range m.Poles {
		if partner[k] != -1 || imag(p) == 0 {
			continue
		}
		for l := k + 1; l < len(m.Poles); l++ {
			if partner[l] == -1 && m.Poles[l] == cmplx.Conj(p) {
				partner[k], partner[l] = l, k
				w := weight[k] + weight[l]
				weight[k], weight[l] = w, w
				break
			}
		}
	}
	order := make([]int, len(m.Poles))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weight[order[a]] > weight[order[b]] })
	selected := map[int]bool{}
	for _, k := range order {
		if len(selected) >= keep {
			break
		}
		if selected[k] {
			continue
		}
		selected[k] = true
		if p := partner[k]; p >= 0 && len(selected) < keep+1 {
			selected[p] = true
		}
	}
	for k, p := range m.Poles {
		if selected[k] {
			out.Poles = append(out.Poles, p)
			out.Res = append(out.Res, m.Res[k].Clone())
			continue
		}
		for i := 0; i < m.Np; i++ {
			for j := 0; j < m.Np; j++ {
				out.D0.Add(i, j, real(-m.Res[k].At(i, j)/p))
			}
		}
	}
	return out
}

// StabReport describes what Stabilize did.
type StabReport struct {
	Removed     []complex128 // dropped unstable poles
	BetaMin     float64      // extremal β factors applied (1 when no correction)
	BetaMax     float64
	DCErrBefore float64 // max |ΔZ(0)| that dropping alone would have caused
}

// StabilizeShiftInPlace is StabilizeShift mutating the receiver: unstable
// poles are removed by compacting Poles/Res in place and their DC
// contribution is folded into D0. Used by the per-sample fast path so a
// reusable evaluation scratch generates no garbage.
func (m *Macromodel) StabilizeShiftInPlace() StabReport {
	rep := StabReport{BetaMin: 1, BetaMax: 1}
	keep := 0
	for k, p := range m.Poles {
		if real(p) > 0 {
			rep.Removed = append(rep.Removed, p)
			r := m.Res[k]
			for i := 0; i < m.Np; i++ {
				row := r.Row(i)
				d0 := m.D0.Row(i)
				for j := 0; j < m.Np; j++ {
					shift := -row[j] / p
					d0[j] += real(shift)
					if a := cmplx.Abs(shift); a > rep.DCErrBefore {
						rep.DCErrBefore = a
					}
				}
			}
			continue
		}
		m.Poles[keep] = p
		m.Res[keep] = m.Res[k]
		keep++
	}
	m.Poles = m.Poles[:keep]
	m.Res = m.Res[:keep]
	return rep
}

// StabilizeInPlace is Stabilize (the paper's β residue rescaling of
// eq. 22–23) mutating the receiver.
func (m *Macromodel) StabilizeInPlace() StabReport {
	rep := StabReport{BetaMin: 1, BetaMax: 1}
	unstable := false
	for _, p := range m.Poles {
		if real(p) > 0 {
			unstable = true
			break
		}
	}
	if !unstable {
		return rep
	}
	// β_ij computed from the full pole set before filtering (eq. 23),
	// then applied to the surviving residues.
	for i := 0; i < m.Np; i++ {
		for j := 0; j < m.Np; j++ {
			all := complex(0, 0)
			stable := complex(0, 0)
			for k, p := range m.Poles {
				t := m.Res[k].At(i, j) / p
				all += t
				if real(p) <= 0 {
					stable += t
				}
			}
			rep.DCErrBefore = math.Max(rep.DCErrBefore, cmplx.Abs(all-stable))
			if cmplx.Abs(stable) == 0 {
				continue
			}
			beta := real(all / stable)
			if beta < rep.BetaMin {
				rep.BetaMin = beta
			}
			if beta > rep.BetaMax {
				rep.BetaMax = beta
			}
			for k, p := range m.Poles {
				if real(p) <= 0 {
					m.Res[k].Set(i, j, m.Res[k].At(i, j)*complex(beta, 0))
				}
			}
		}
	}
	keep := 0
	for k, p := range m.Poles {
		if real(p) > 0 {
			rep.Removed = append(rep.Removed, p)
			continue
		}
		m.Poles[keep] = p
		m.Res[keep] = m.Res[k]
		keep++
	}
	m.Poles = m.Poles[:keep]
	m.Res = m.Res[:keep]
	return rep
}

// StabilizeShift removes right-half-plane poles and folds their DC
// contribution (−r/p) into the direct resistive term D0. Like the β
// correction it preserves Z(0) exactly, but it leaves the surviving poles'
// residues untouched, which behaves better when a removed mode carries a
// large share of the DC impedance (a very fast unstable junk mode acts as
// a resistor over the simulation band anyway). This is the engineering
// variant of the paper's eq. (22) heuristic; Stabilize implements the
// published β-scaling form.
func (m *Macromodel) StabilizeShift() (*Macromodel, StabReport) {
	rep := StabReport{BetaMin: 1, BetaMax: 1}
	out := &Macromodel{Np: m.Np, D0: m.D0.Clone()}
	for k, p := range m.Poles {
		if real(p) > 0 {
			rep.Removed = append(rep.Removed, p)
			for i := 0; i < m.Np; i++ {
				for j := 0; j < m.Np; j++ {
					shift := -m.Res[k].At(i, j) / p
					out.D0.Add(i, j, real(shift))
					rep.DCErrBefore = math.Max(rep.DCErrBefore, cmplx.Abs(shift))
				}
			}
		} else {
			out.Poles = append(out.Poles, p)
			out.Res = append(out.Res, m.Res[k].Clone())
		}
	}
	return out, rep
}

// Stabilize applies the paper's two-step correction: remove poles with
// positive real part, then scale each surviving residue entry by the
// common factor β_ij of eq. (23) so Z_ij(0) is preserved. Returns a new
// macromodel; the receiver is unchanged.
func (m *Macromodel) Stabilize() (*Macromodel, StabReport) {
	rep := StabReport{BetaMin: 1, BetaMax: 1}
	out := &Macromodel{Np: m.Np, D0: m.D0.Clone()}
	var unstableIdx []int
	for k, p := range m.Poles {
		if real(p) > 0 {
			unstableIdx = append(unstableIdx, k)
			rep.Removed = append(rep.Removed, p)
		} else {
			out.Poles = append(out.Poles, p)
			out.Res = append(out.Res, m.Res[k].Clone())
		}
	}
	if len(unstableIdx) == 0 {
		return out, rep
	}
	// β_ij = (Σ_all r/p) / (Σ_stable r/p), per entry (eq. 23).
	for i := 0; i < m.Np; i++ {
		for j := 0; j < m.Np; j++ {
			all := complex(0, 0)
			stable := complex(0, 0)
			for k, p := range m.Poles {
				t := m.Res[k].At(i, j) / p
				all += t
				if real(p) <= 0 {
					stable += t
				}
			}
			rep.DCErrBefore = math.Max(rep.DCErrBefore, cmplx.Abs(all-stable))
			if cmplx.Abs(stable) == 0 {
				continue // nothing left to scale on this entry
			}
			beta := real(all / stable)
			if beta < rep.BetaMin {
				rep.BetaMin = beta
			}
			if beta > rep.BetaMax {
				rep.BetaMax = beta
			}
			for k := range out.Poles {
				out.Res[k].Set(i, j, out.Res[k].At(i, j)*complex(beta, 0))
			}
		}
	}
	return out, rep
}
