package poleres

import (
	"errors"
	"fmt"
	"math/cmplx"

	"lcsim/internal/mat"
	"lcsim/internal/mor"
)

// ErrSingularGr reports that the evaluated conductance matrix Gr(w) of a
// sample is singular, so the exact per-sample DC correction (and any DC
// solve downstream) is impossible at that sample. It is a per-sample
// fault, not a characterization failure: statistical runs classify it
// (core.ClassSingularGr) and can skip or degrade instead of aborting.
var ErrSingularGr = errors.New("poleres: Gr(w) is singular at this sample")

// ErrAllPolesUnstable reports that the stability filter removed every
// pole of a sample's macromodel: the remaining purely-static model cannot
// represent the transient, so the sample must be treated as failed
// rather than silently simulated with a DC-only load.
var ErrAllPolesUnstable = errors.New("poleres: stabilization removed every pole")

// VarMacromodel is a pole/residue macromodel characterized once per stage
// together with its first-order sensitivities to every global parameter of
// the variational ROM library. Where Extract pays a dense LU, an explicit
// eigendecomposition and a complex LU for EVERY statistical sample, the
// variational macromodel pays them once per stage and evaluates each
// sample as an O(q·np²) affine update of the nominal poles, residues and
// direct term:
//
//	p_k(w)  = p_k⁰ + Σ_v w_v·dp_k
//	R_k(w)  = R_k⁰ + Σ_v w_v·dR_k
//	D0(w)   = D0⁰  + Σ_v w_v·dD0
//
// The sensitivities follow from first-order eigenvalue/eigenvector
// perturbation theory on T = −Gr⁻¹Cr: with right eigenvectors xₖ (columns
// of S) and left eigenvectors yₖᵀ (rows of S⁻¹, so yₖᵀxₖ = 1 holds by
// construction),
//
//	dλ_k = yₖᵀ·dT·xₖ                       (diagonal of B = S⁻¹·dT·S)
//	dxₖ  = Σ_{j≠k} B[j,k]/(λ_k−λ_j) · xⱼ   (dS = S·C, C[j,k] = B[j,k]/(λ_k−λ_j))
//
// The paper's stabilization is still applied per sample on the perturbed
// poles (by the stage evaluation loop), preserving the stability and
// DC-accuracy contract of eqs. 21–23.
type VarMacromodel struct {
	Np     int
	Params []string

	// Nominal is the exact nominal extraction with stabilization NOT yet
	// applied: the per-sample path stabilizes after evaluating the
	// perturbed model, exactly like the per-sample extraction path does.
	Nominal *Macromodel

	// First-order sensitivities per parameter, aligned with Nominal.
	DPoles map[string][]complex128
	DRes   map[string][]*mat.CDense
	DD0    map[string]*mat.Dense

	// gr0/dgr reference the library's conductance matrices for the exact
	// per-sample DC correction (see EvalInto): interconnect impedance
	// matrices hide delicate DC cancellations (coupling entries that are
	// exactly zero arise as differences of large pole/residue terms), and
	// first-order residues break them by O(δ²) — an absolute error that the
	// driver currents then amplify. Re-solving Z(0) = Gr(w)⁻¹|ports exactly
	// per sample costs one small LU and removes the entire flat offset.
	gr0 *mat.Dense
	dgr map[string]*mat.Dense
}

// eigGapFloor is the minimum relative eigenvalue separation below which
// the first-order eigenvector correction (which divides by λ_k − λ_j) is
// numerically meaningless. ExtractVar fails below it and callers fall
// back to per-sample extraction.
const eigGapFloor = 1e-8

// mixCap bounds the first-order eigenvector rotation angle |B[j,k]|/|λ_k−λ_j|
// (per unit parameter) that ExtractVar will represent. Above it the pair is
// quasi-degenerate for this parameter: the 1/gap factor amplifies the
// truncation error instead of the signal, so the mixing term is dropped.
// This is the complementary regime — when the gap is that small relative
// to the perturbation, the cluster's poles nearly coincide and rotating
// residues within it barely moves the transfer function, so omitting the
// rotation is the accurate choice (quasi-degenerate perturbation theory).
const mixCap = 0.5

// ExtractVar characterizes the variational pole/residue macromodel from a
// variational ROM library: one nominal extraction plus one O(q³) linear
// pass per parameter. Returns an error when the nominal spectrum is too
// close to degenerate for perturbation theory; callers should then keep
// using per-sample Extract.
func ExtractVar(vrom *mor.VarROM) (*VarMacromodel, error) {
	gr0, cr0 := vrom.Gr0, vrom.Cr0
	np := vrom.Np
	q := gr0.Rows()
	grLU, err := mat.FactorLU(gr0)
	if err != nil {
		return nil, fmt.Errorf("poleres: nominal Gr is singular: %w", err)
	}
	if cond := mat.Norm1(gr0) * grLU.Norm1Inverse(); cond > 1e14 {
		return nil, fmt.Errorf("poleres: nominal Gr is numerically singular (cond ≈ %.2g)", cond)
	}
	grInv := grLU.Inverse()           // characterization-time only; samples never invert
	t := grLU.SolveMat(cr0).Scale(-1) // T = −Gr⁻¹Cr
	ed, err := mat.EigenDecompose(t)
	if err != nil {
		return nil, fmt.Errorf("poleres: eigendecomposition of nominal T failed: %w", err)
	}
	s := ed.Vectors
	sInv, err := ed.LeftVectors()
	if err != nil {
		return nil, fmt.Errorf("poleres: %w", err)
	}
	lam := ed.Values
	lamMax := 0.0
	for _, l := range lam {
		if a := cmplx.Abs(l); a > lamMax {
			lamMax = a
		}
	}
	if lamMax == 0 {
		return nil, fmt.Errorf("poleres: nominal T has an all-zero spectrum")
	}
	gapTol := eigGapFloor * lamMax
	for k := 0; k < q; k++ {
		for j := k + 1; j < q; j++ {
			if lam[k] != lam[j] && cmplx.Abs(lam[k]-lam[j]) < gapTol {
				return nil, fmt.Errorf("poleres: near-degenerate eigenvalues λ%d, λ%d (gap %.3g < %.3g); first-order perturbation is invalid — use per-sample extraction", k, j, cmplx.Abs(lam[k]-lam[j]), gapTol)
			}
		}
	}
	// ν = S⁻¹·Gr⁻¹ (eq. 19).
	nu := cMulReal(sInv, grInv)
	// Nominal model, remembering which eigenmode produced each retained
	// pole so the sensitivity slices stay aligned with Nominal.Poles.
	tiny := 1e-12 * lamMax
	nom := &Macromodel{Np: np, D0: mat.NewDense(np, np)}
	var dynModes, zeroModes []int
	for k := 0; k < q; k++ {
		if cmplx.Abs(lam[k]) <= tiny {
			zeroModes = append(zeroModes, k)
			for i := 0; i < np; i++ {
				for j := 0; j < np; j++ {
					nom.D0.Add(i, j, real(s.At(i, k)*nu.At(k, j)))
				}
			}
			continue
		}
		dynModes = append(dynModes, k)
		nom.Poles = append(nom.Poles, 1/lam[k])
		res := mat.NewCDense(np, np)
		for i := 0; i < np; i++ {
			for j := 0; j < np; j++ {
				res.Set(i, j, -s.At(i, k)*nu.At(k, j)/lam[k])
			}
		}
		nom.Res = append(nom.Res, res)
	}

	vm := &VarMacromodel{
		Np:      np,
		Params:  append([]string(nil), vrom.Params...),
		Nominal: nom,
		DPoles:  map[string][]complex128{},
		DRes:    map[string][]*mat.CDense{},
		DD0:     map[string]*mat.Dense{},
		gr0:     gr0,
		dgr:     vrom.DGr,
	}
	for _, prm := range vm.Params {
		dgr, dcr := vrom.DGr[prm], vrom.DCr[prm]
		// dT = −Gr⁻¹·(dGr·T + dCr).
		dt := grLU.SolveMat(mat.Mul(dgr, t).AddScaled(1, dcr)).Scale(-1)
		// B = S⁻¹·dT·S; dλ_k = B[k,k]; C[j,k] = B[j,k]/(λ_k−λ_j).
		b := cMulC(cMulReal(sInv, dt), s)
		cMat := mat.NewCDense(q, q)
		for k := 0; k < q; k++ {
			for j := 0; j < q; j++ {
				if j == k || lam[k] == lam[j] {
					continue // exactly repeated eigenvalue: no first-order mixing
				}
				gap := lam[k] - lam[j]
				bjk := b.At(j, k)
				if cmplx.Abs(bjk) > mixCap*cmplx.Abs(gap) {
					continue // quasi-degenerate pair for this parameter
				}
				cMat.Set(j, k, bjk/gap)
			}
		}
		// dS = S·C and dν = −C·ν − ν·(dGr·Gr⁻¹).
		ds := cMulC(s, cMat)
		dnu := mat.NewCDense(q, q).
			AddScaled(-1, cMulC(cMat, nu)).
			AddScaled(-1, cMulReal(nu, mat.Mul(dgr, grInv)))
		dpoles := make([]complex128, 0, len(dynModes))
		dres := make([]*mat.CDense, 0, len(dynModes))
		for mi, k := range dynModes {
			l := lam[k]
			// The second member of a conjugate pair is forced to be the
			// exact conjugate of the first, so evaluated samples keep
			// exactly conjugate pole pairs — the convolver's pair detection
			// and the realness of v(t) depend on it.
			if mi > 0 && imag(l) != 0 && lam[dynModes[mi-1]] == cmplx.Conj(l) {
				dpoles = append(dpoles, cmplx.Conj(dpoles[mi-1]))
				prev := dres[mi-1]
				dr := mat.NewCDense(np, np)
				for i := 0; i < np; i++ {
					pr, or := prev.Row(i), dr.Row(i)
					for j := range pr {
						or[j] = cmplx.Conj(pr[j])
					}
				}
				dres = append(dres, dr)
				continue
			}
			dl := b.At(k, k)
			// p = 1/λ  →  dp = −dλ/λ².
			dpoles = append(dpoles, -dl/(l*l))
			// R = −S[:,k]·ν[k,:]/λ  →
			// dR = −(dS[:,k]·ν[k,:] + S[:,k]·dν[k,:])/λ + S[:,k]·ν[k,:]·dλ/λ².
			dr := mat.NewCDense(np, np)
			for i := 0; i < np; i++ {
				for j := 0; j < np; j++ {
					sv := s.At(i, k) * nu.At(k, j)
					dsv := ds.At(i, k)*nu.At(k, j) + s.At(i, k)*dnu.At(k, j)
					dr.Set(i, j, -dsv/l+sv*dl/(l*l))
				}
			}
			dres = append(dres, dr)
		}
		dd0 := mat.NewDense(np, np)
		for _, k := range zeroModes {
			for i := 0; i < np; i++ {
				for j := 0; j < np; j++ {
					dd0.Add(i, j, real(ds.At(i, k)*nu.At(k, j)+s.At(i, k)*dnu.At(k, j)))
				}
			}
		}
		vm.DPoles[prm] = dpoles
		vm.DRes[prm] = dres
		vm.DD0[prm] = dd0
	}
	return vm, nil
}

// At evaluates the macromodel at a parameter sample into a freshly
// allocated Macromodel. Per-sample loops should hold a MacroEval and use
// EvalInto instead. A sample whose Gr(w) is singular returns
// ErrSingularGr (the DC correction is impossible there).
func (v *VarMacromodel) At(w map[string]float64) (*Macromodel, error) {
	mac, err := v.EvalInto(v.NewEval(), w)
	if err != nil {
		return nil, err
	}
	out := &Macromodel{
		Np:    mac.Np,
		D0:    mac.D0.Clone(),
		Poles: append([]complex128(nil), mac.Poles...),
	}
	for _, r := range mac.Res {
		out.Res = append(out.Res, r.Clone())
	}
	return out, nil
}

// MacroEval is a reusable per-worker evaluation buffer for a
// VarMacromodel. EvalInto overwrites it completely on every call, so a
// steady-state sample evaluation performs zero allocations.
type MacroEval struct {
	mac  Macromodel
	pool []*mat.CDense // one residue buffer per nominal pole, reused
	pbuf []complex128

	// DC-correction scratch: Gr(w), its LU workspace and solve vectors.
	grw  *mat.Dense
	lu   *mat.LU
	e, x []float64
}

// NewEval allocates an evaluation buffer sized for the model.
func (v *VarMacromodel) NewEval() *MacroEval {
	n := len(v.Nominal.Poles)
	q := v.gr0.Rows()
	me := &MacroEval{
		pool: make([]*mat.CDense, n),
		pbuf: make([]complex128, n),
		grw:  mat.NewDense(q, q),
		lu:   mat.NewLU(q),
		e:    make([]float64, q),
		x:    make([]float64, q),
	}
	for k := range me.pool {
		me.pool[k] = mat.NewCDense(v.Np, v.Np)
	}
	me.mac = Macromodel{
		Np:  v.Np,
		D0:  mat.NewDense(v.Np, v.Np),
		Res: make([]*mat.CDense, n),
	}
	return me
}

// EvalInto evaluates the macromodel at sample w into the reusable buffer
// and returns the contained model. The returned model is owned by me and
// overwritten by the next call; in-place stabilization of it is fine
// (the pole/residue buffers are re-copied from the nominal every time).
//
// A sample whose evaluated Gr(w) is singular returns ErrSingularGr: the
// exact DC correction cannot be applied there, and silently using the
// uncorrected first-order model would produce a subtly wrong delay.
// Callers must treat such a sample as failed (skip, degrade to exact
// extraction, or abort per their failure policy).
func (v *VarMacromodel) EvalInto(me *MacroEval, w map[string]float64) (*Macromodel, error) {
	n := len(v.Nominal.Poles)
	me.mac.D0.CopyFrom(v.Nominal.D0)
	copy(me.pbuf[:n], v.Nominal.Poles)
	for k := 0; k < n; k++ {
		me.pool[k].CopyFrom(v.Nominal.Res[k])
	}
	for _, prm := range v.Params {
		wv := w[prm]
		if wv == 0 {
			continue
		}
		me.mac.D0.AddScaled(wv, v.DD0[prm])
		dp := v.DPoles[prm]
		dr := v.DRes[prm]
		cwv := complex(wv, 0)
		for k := 0; k < n; k++ {
			me.pbuf[k] += cwv * dp[k]
			me.pool[k].AddScaled(cwv, dr[k])
		}
	}
	me.mac.Poles = me.pbuf[:n]
	me.mac.Res = me.mac.Res[:n]
	copy(me.mac.Res, me.pool)
	if err := v.fixDC(me, w); err != nil {
		return nil, err
	}
	return &me.mac, nil
}

// fixDC replaces the perturbed model's DC behavior with the exact
// Z(0) = Gr(w)⁻¹|ports of the evaluated library ROM, folding the
// difference into D0. First-order pole/residue truncation leaves a flat
// absolute offset on Z (worst on coupling entries whose exact DC value is
// a cancellation of large terms); one q×q refactorization per sample
// removes it entirely. A singular Gr(w) returns ErrSingularGr: the
// sample's model cannot be DC-corrected, and must not be used.
func (v *VarMacromodel) fixDC(me *MacroEval, w map[string]float64) error {
	me.grw.CopyFrom(v.gr0)
	for _, prm := range v.Params {
		if wv := w[prm]; wv != 0 {
			me.grw.AddScaled(wv, v.dgr[prm])
		}
	}
	if err := me.lu.Refactor(me.grw); err != nil {
		return fmt.Errorf("%w: %v", ErrSingularGr, err)
	}
	np := v.Np
	for j := 0; j < np; j++ {
		me.e[j] = 1
		me.lu.SolveInto(me.x, me.e)
		me.e[j] = 0
		for i := 0; i < np; i++ {
			// Model DC entry: D0 − Σ_k Re(R_k/p_k).
			model := me.mac.D0.At(i, j)
			for k, p := range me.mac.Poles {
				model -= real(me.mac.Res[k].At(i, j) / p)
			}
			me.mac.D0.Add(i, j, me.x[i]-model)
		}
	}
	return nil
}

// cMulReal returns a·b with a complex and b real.
func cMulReal(a *mat.CDense, b *mat.Dense) *mat.CDense {
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("poleres: cMulReal inner dims %d != %d", a.Cols(), b.Rows()))
	}
	out := mat.NewCDense(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		ar, or := a.Row(i), out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * complex(bv, 0)
			}
		}
	}
	return out
}

// cMulC returns a·b for two complex matrices.
func cMulC(a, b *mat.CDense) *mat.CDense {
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("poleres: cMulC inner dims %d != %d", a.Cols(), b.Rows()))
	}
	out := mat.NewCDense(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		ar, or := a.Row(i), out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out
}
