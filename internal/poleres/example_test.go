package poleres_test

import (
	"fmt"

	"lcsim/internal/circuit"
	"lcsim/internal/mor"
	"lcsim/internal/poleres"
)

func ExampleExtract() {
	// One-port RC with a port shunt reduces to a small stable model whose
	// DC impedance is exactly the shunt resistance.
	nl := circuit.New()
	prev := "in"
	for k := 1; k <= 10; k++ {
		n := fmt.Sprintf("n%d", k)
		nl.AddR(fmt.Sprintf("R%d", k), prev, n, circuit.V(100))
		nl.AddC(fmt.Sprintf("C%d", k), n, "0", circuit.V(1e-13))
		prev = n
	}
	nl.MarkPort("in")
	sys, _ := circuit.AssembleVariational(nl)
	sys.SetPortConductance([]float64{1e-3}) // 1 kΩ driver conductance
	rom, _ := mor.Reduce(sys.GNominal(), sys.CNominal(), 1, 3)
	m, _ := poleres.Extract(rom)
	fmt.Printf("stable=%v poles=%d Z(0)=%.0f\n", m.IsStable(), len(m.Poles), m.DCZ().At(0, 0))
	// Output: stable=true poles=4 Z(0)=1000
}

func ExampleConvolver() {
	// Drive a single-pole impedance with a current step by recursive
	// convolution: the voltage settles at I·Z(0).
	rom, _ := onePortROM()
	m, _ := poleres.Extract(rom)
	st, _ := m.StabilizeShift()
	cv, _ := poleres.NewConvolver(st, 1e-11)
	cv.SetInitialCurrent([]float64{1e-3})
	var v float64
	for i := 0; i < 4000; i++ {
		v = cv.Advance([]float64{1e-3})[0]
	}
	fmt.Printf("settled at %.2f V (Z0 = %.0f Ω)\n", v, st.DCZ().At(0, 0))
	// Output: settled at 1.00 V (Z0 = 1000 Ω)
}

func onePortROM() (*mor.ROM, error) {
	nl := circuit.New()
	nl.AddR("R1", "in", "n1", circuit.V(100))
	nl.AddC("C1", "n1", "0", circuit.V(1e-13))
	nl.MarkPort("in")
	sys, err := circuit.AssembleVariational(nl)
	if err != nil {
		return nil, err
	}
	if err := sys.SetPortConductance([]float64{1e-3}); err != nil {
		return nil, err
	}
	return mor.Reduce(sys.GNominal(), sys.CNominal(), 1, 1)
}
