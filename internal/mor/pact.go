// Package mor implements projection-based model order reduction for the
// linear interconnect: a PACT-style split congruence transformation that
// preserves port voltages exactly and reduces the internal block with a
// block-Krylov (PRIMA) basis, plus the paper's first-order variational
// reduced-order models (eqs. 5, 8–11) whose loss of passivity is the
// phenomenon the linear-centric framework works around.
package mor

import (
	"fmt"

	"lcsim/internal/mat"
	"lcsim/internal/sparse"
)

// ROM is a reduced-order model in the paper's eq. (5) coordinates: the
// first Np entries of the reduced state are the port voltages themselves,
// the remaining Q-Np are reduced internal states.
//
//	Gr = | A  0 |      Cr = | B  R  |
//	     | 0  D |           | Rᵀ E  |
type ROM struct {
	Np int
	Gr *mat.Dense // Q×Q
	Cr *mat.Dense // Q×Q
}

// Q returns the total reduced order (ports + internal states).
func (r *ROM) Q() int { return r.Gr.Rows() }

// projection holds the pieces of the split congruence T = U·diag(I, Xi):
// columns of the full n×(Np+k) projection matrix, with the port block
// fixed to the identity.
type projection struct {
	np int
	m  *mat.Dense // ni×np block: M = Gii^{-1}·Gip (the congruence part)
	xi *mat.Dense // ni×k orthonormal internal basis
}

// full materializes the n×(np+k) projection matrix T (ports first).
func (p *projection) full(n int) *mat.Dense {
	k := p.xi.Cols()
	t := mat.NewDense(n, p.np+k)
	for i := 0; i < p.np; i++ {
		t.Set(i, i, 1)
	}
	ni := n - p.np
	for i := 0; i < ni; i++ {
		for j := 0; j < p.np; j++ {
			t.Set(p.np+i, j, -p.m.At(i, j))
		}
		for j := 0; j < k; j++ {
			t.Set(p.np+i, p.np+j, p.xi.At(i, j))
		}
	}
	return t
}

// Reduce computes a nominal PACT/PRIMA reduced model of internal order k
// for the pencil (G, C) whose first np indices are ports. G must be
// nonsingular with a nonsingular internal block.
func Reduce(g, c *sparse.CSC, np, k int) (*ROM, error) {
	p, err := buildProjection(g, c, np, k)
	if err != nil {
		return nil, err
	}
	return assembleROM(g, c, np, p), nil
}

// buildProjection constructs the split-congruence + Krylov projection.
func buildProjection(g, c *sparse.CSC, np, k int) (*projection, error) {
	n := g.N()
	if np <= 0 || np > n {
		return nil, fmt.Errorf("mor: np = %d out of range for n = %d", np, n)
	}
	ni := n - np
	if k > ni {
		k = ni
	}
	if k < 1 {
		return nil, fmt.Errorf("mor: no internal nodes to reduce (n=%d, np=%d)", n, np)
	}
	ports := make([]int, np)
	for i := range ports {
		ports[i] = i
	}
	internal := make([]int, ni)
	for i := range internal {
		internal[i] = np + i
	}
	gii := g.Extract(internal, internal)
	gip := g.Extract(internal, ports)
	cii := c.Extract(internal, internal)
	cip := c.Extract(internal, ports)

	giiLU, err := sparse.FactorLU(gii, 0.1)
	if err != nil {
		return nil, fmt.Errorf("mor: internal conductance block is singular: %w", err)
	}
	// M = Gii^{-1} Gip.
	m := mat.NewDense(ni, np)
	for j := 0; j < np; j++ {
		col := make([]float64, gii.N())
		for i := 0; i < ni; i++ {
			col[i] = gip.At(i, j)
		}
		m.SetCol(j, giiLU.Solve(col)[:ni])
	}
	// Transformed internal-to-port coupling: C'ip = Cip − Cii·M.
	cipT := mat.NewDense(ni, np)
	for j := 0; j < np; j++ {
		mj := padded(m.Col(j), cii.N())
		cm := cii.MulVec(mj)
		for i := 0; i < ni; i++ {
			cipT.Set(i, j, cip.At(i, j)-cm[i])
		}
	}
	// Block Krylov: W0 = Gii^{-1} C'ip, W_{j+1} = Gii^{-1} Cii W_j.
	xi := mat.NewDense(ni, 0)
	var xcols [][]float64
	w := mat.NewDense(ni, np)
	for j := 0; j < np; j++ {
		w.SetCol(j, giiLU.Solve(padded(cipT.Col(j), gii.N()))[:ni])
	}
	for len(xcols) < k {
		added := 0
		for j := 0; j < w.Cols() && len(xcols) < k; j++ {
			v := w.Col(j)
			orig := mat.Norm2(v)
			if orig == 0 {
				continue
			}
			for pass := 0; pass < 2; pass++ {
				for _, q := range xcols {
					mat.AXPY(-mat.Dot(q, v), q, v)
				}
			}
			nrm := mat.Norm2(v)
			if nrm <= 1e-10*orig {
				continue // deflated
			}
			for i := range v {
				v[i] /= nrm
			}
			xcols = append(xcols, v)
			added++
		}
		if added == 0 {
			break // Krylov space exhausted
		}
		// Next block: W = Gii^{-1} Cii · (last added columns).
		nw := mat.NewDense(ni, added)
		for j := 0; j < added; j++ {
			cw := cii.MulVec(padded(xcols[len(xcols)-added+j], cii.N()))
			nw.SetCol(j, giiLU.Solve(cw)[:ni])
		}
		w = nw
	}
	if len(xcols) == 0 {
		return nil, fmt.Errorf("mor: Krylov space is empty (no internal dynamics)")
	}
	xi = mat.NewDense(ni, len(xcols))
	for j, col := range xcols {
		xi.SetCol(j, col)
	}
	return &projection{np: np, m: m, xi: xi}, nil
}

// padded zero-extends v to length n (Extract stores rectangular blocks in
// square CSC storage).
func padded(v []float64, n int) []float64 {
	if len(v) == n {
		return v
	}
	out := make([]float64, n)
	copy(out, v)
	return out
}

// assembleROM computes Gr = TᵀGT, Cr = TᵀCT for the projection.
func assembleROM(g, c *sparse.CSC, np int, p *projection) *ROM {
	n := g.N()
	t := p.full(n)
	gr := congruenceSparse(g, t)
	cr := congruenceSparse(c, t)
	return &ROM{Np: np, Gr: gr, Cr: cr}
}

// congruenceSparse computes TᵀAT with A sparse and T dense.
func congruenceSparse(a *sparse.CSC, t *mat.Dense) *mat.Dense {
	n, q := t.Rows(), t.Cols()
	at := mat.NewDense(n, q)
	for j := 0; j < q; j++ {
		at.SetCol(j, a.MulVec(t.Col(j)))
	}
	out := mat.NewDense(q, q)
	for i := 0; i < q; i++ {
		ti := t.Col(i)
		for j := 0; j < q; j++ {
			out.Set(i, j, mat.Dot(ti, at.Col(j)))
		}
	}
	return out
}

// PortImpedance evaluates the exact multiport impedance Z(s) = P(G+sC)^{-1}Pᵀ
// of a full system at a single complex frequency (P selects the first np
// rows). Used to validate reduced models against the original network.
func PortImpedance(g, c *sparse.CSC, np int, s complex128) (*mat.CDense, error) {
	n := g.N()
	a := mat.NewCDense(n, n)
	g.ForEach(func(i, j int, v float64) { a.Set(i, j, a.At(i, j)+complex(v, 0)) })
	c.ForEach(func(i, j int, v float64) { a.Set(i, j, a.At(i, j)+s*complex(v, 0)) })
	f, err := mat.FactorCLU(a)
	if err != nil {
		return nil, err
	}
	z := mat.NewCDense(np, np)
	e := make([]complex128, n)
	for j := 0; j < np; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		x := f.Solve(e)
		for i := 0; i < np; i++ {
			z.Set(i, j, x[i])
		}
	}
	return z, nil
}

// ROMImpedance evaluates the reduced model's port impedance at s.
func (r *ROM) ROMImpedance(s complex128) (*mat.CDense, error) {
	q := r.Q()
	a := mat.NewCDense(q, q)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			a.Set(i, j, complex(r.Gr.At(i, j), 0)+s*complex(r.Cr.At(i, j), 0))
		}
	}
	f, err := mat.FactorCLU(a)
	if err != nil {
		return nil, err
	}
	z := mat.NewCDense(r.Np, r.Np)
	e := make([]complex128, q)
	for j := 0; j < r.Np; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		x := f.Solve(e)
		for i := 0; i < r.Np; i++ {
			z.Set(i, j, x[i])
		}
	}
	return z, nil
}
