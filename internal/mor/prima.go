package mor

import (
	"fmt"

	"lcsim/internal/mat"
	"lcsim/internal/sparse"
)

// PRIMAROM is a classical PRIMA reduced model: a pure congruence
// projection of the full pencil onto the block Krylov subspace
// span{G⁻¹B, (G⁻¹C)G⁻¹B, …}. Unlike the split-congruence form (ROM), the
// reduced state has no port-voltage identity block — the port map is the
// projected incidence Br — but the model is provably passive for passive
// (G, C), which is why the paper contrasts it with the variational forms
// that lose this property.
type PRIMAROM struct {
	Np int
	Gr *mat.Dense
	Cr *mat.Dense
	Br *mat.Dense // q×np projected port incidence
}

// Q returns the reduced order.
func (r *PRIMAROM) Q() int { return r.Gr.Rows() }

// ReducePRIMA computes a classical PRIMA reduction of order up to q for
// the pencil (G, C) with the first np indices as ports.
func ReducePRIMA(g, c *sparse.CSC, np, q int) (*PRIMAROM, error) {
	n := g.N()
	if np <= 0 || np > n {
		return nil, fmt.Errorf("mor: np = %d out of range for n = %d", np, n)
	}
	if q < np {
		q = np
	}
	lu, err := sparse.FactorLU(g, 0.1)
	if err != nil {
		return nil, fmt.Errorf("mor: PRIMA: G singular: %w", err)
	}
	// First block: G⁻¹B.
	var xcols [][]float64
	block := make([][]float64, np)
	for j := 0; j < np; j++ {
		e := make([]float64, n)
		e[j] = 1
		block[j] = lu.Solve(e)
	}
	appendBlock := func(cols [][]float64) int {
		added := 0
		for _, v := range cols {
			orig := mat.Norm2(v)
			if orig == 0 {
				continue
			}
			for pass := 0; pass < 2; pass++ {
				for _, qv := range xcols {
					mat.AXPY(-mat.Dot(qv, v), qv, v)
				}
			}
			nrm := mat.Norm2(v)
			if nrm <= 1e-10*orig {
				continue
			}
			for i := range v {
				v[i] /= nrm
			}
			xcols = append(xcols, v)
			added++
			if len(xcols) >= q {
				break
			}
		}
		return added
	}
	appendBlock(block)
	for len(xcols) < q {
		last := xcols[len(xcols)-min(np, len(xcols)):]
		next := make([][]float64, 0, len(last))
		for _, v := range last {
			next = append(next, lu.Solve(c.MulVec(v)))
		}
		if appendBlock(next) == 0 {
			break // Krylov space exhausted
		}
	}
	x := mat.NewDense(n, len(xcols))
	for j, col := range xcols {
		x.SetCol(j, col)
	}
	rom := &PRIMAROM{
		Np: np,
		Gr: congruenceSparse(g, x),
		Cr: congruenceSparse(c, x),
		Br: mat.NewDense(len(xcols), np),
	}
	for j := 0; j < np; j++ {
		for i := 0; i < len(xcols); i++ {
			rom.Br.Set(i, j, x.At(j, i)) // Br = XᵀB with B = [I_np; 0]
		}
	}
	return rom, nil
}

// ROMImpedance evaluates Z(s) = Brᵀ(Gr + sCr)⁻¹Br.
func (r *PRIMAROM) ROMImpedance(s complex128) (*mat.CDense, error) {
	q := r.Q()
	a := mat.NewCDense(q, q)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			a.Set(i, j, complex(r.Gr.At(i, j), 0)+s*complex(r.Cr.At(i, j), 0))
		}
	}
	f, err := mat.FactorCLU(a)
	if err != nil {
		return nil, err
	}
	z := mat.NewCDense(r.Np, r.Np)
	rhs := make([]complex128, q)
	for j := 0; j < r.Np; j++ {
		for i := 0; i < q; i++ {
			rhs[i] = complex(r.Br.At(i, j), 0)
		}
		x := f.Solve(rhs)
		for i := 0; i < r.Np; i++ {
			acc := complex(0, 0)
			for k := 0; k < q; k++ {
				acc += complex(r.Br.At(k, i), 0) * x[k]
			}
			z.Set(i, j, acc)
		}
	}
	return z, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
