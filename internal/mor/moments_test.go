package mor

import (
	"math"
	"testing"
)

func TestMomentsAnalyticRC(t *testing.T) {
	// One-port series R with shunt C behind a port conductance g0:
	// Z(s) = 1/(g0 + sC·...) — use the simplest exactly solvable case:
	// port with shunt g0 and shunt C: Z(s) = 1/(g0 + sC) =
	// (1/g0)(1 − s·C/g0 + s²(C/g0)² − …).
	sys := ladderSystem(t, 1, 0, false)
	// ladderSystem(1) is port -R- n1 with C at n1; instead build the pure
	// shunt case directly for the analytic check:
	g0 := 1e-3
	cv := 2e-12
	if err := sys.SetPortConductance([]float64{g0}); err != nil {
		t.Fatal(err)
	}
	_ = cv
	// Generic property check on the ladder: M0 = Z(0) and the Elmore delay
	// is positive.
	ms, err := Moments(sys.GNominal(), sys.CNominal(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("moment count %d", len(ms))
	}
	zdc, err := PortImpedance(sys.GNominal(), sys.CNominal(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms[0].At(0, 0)-real(zdc.At(0, 0))) > 1e-9*math.Abs(real(zdc.At(0, 0))) {
		t.Fatalf("M0 %g != Z(0) %g", ms[0].At(0, 0), real(zdc.At(0, 0)))
	}
}

func TestMomentsMatchTaylorOfZ(t *testing.T) {
	// Numerically differentiate Z(s) about 0 and compare with the moments.
	sys := ladderSystem(t, 12, 1e-3, false)
	g, c := sys.GNominal(), sys.CNominal()
	ms, err := Moments(g, c, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e6 // rad/s, tiny vs pole magnitudes
	zp, err := PortImpedance(g, c, 1, complex(h, 0))
	if err != nil {
		t.Fatal(err)
	}
	zm, err := PortImpedance(g, c, 1, complex(-h, 0))
	if err != nil {
		t.Fatal(err)
	}
	deriv := real(zp.At(0, 0)-zm.At(0, 0)) / (2 * h)
	if math.Abs(deriv-ms[1].At(0, 0)) > 1e-3*math.Abs(ms[1].At(0, 0)) { // FD truncation O(h²M3)
		t.Fatalf("M1 %g vs dZ/ds %g", ms[1].At(0, 0), deriv)
	}
}

func TestPRIMAMatchesMoments(t *testing.T) {
	// The congruence projection with k internal vectors matches at least
	// the first k block moments (PRIMA's theorem; the split congruence
	// matches DC exactly and the Krylov block extends the match).
	sys := ladderSystem(t, 20, 1e-3, false)
	g, c := sys.GNominal(), sys.CNominal()
	rom, err := Reduce(g, c, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Moments(g, c, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	red, err := rom.ROMMoments(4)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		a := full[m].At(0, 0)
		b := red[m].At(0, 0)
		if math.Abs(a-b) > 1e-6*math.Abs(a) {
			t.Fatalf("moment %d: full %g vs reduced %g", m, a, b)
		}
	}
}

func TestElmoreDelays(t *testing.T) {
	sys := ladderSystem(t, 10, 1e-3, false)
	d, err := ElmoreDelays(sys.GNominal(), sys.CNominal(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] <= 0 {
		t.Fatalf("Elmore delay %g must be positive", d[0])
	}
	// Longer ladder -> larger Elmore delay.
	sys2 := ladderSystem(t, 20, 1e-3, false)
	d2, err := ElmoreDelays(sys2.GNominal(), sys2.CNominal(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if d2[0] <= d[0] {
		t.Fatalf("Elmore must grow with length: %g vs %g", d2[0], d[0])
	}
}

func TestMomentsErrors(t *testing.T) {
	sys := ladderSystem(t, 5, 1e-3, false)
	if _, err := Moments(sys.GNominal(), sys.CNominal(), 0, 2); err == nil {
		t.Fatal("np=0 must error")
	}
	// Singular G (no port conductance, no DC path anywhere): build one.
	sysOpen := ladderSystem(t, 5, 0, false)
	if _, err := Moments(sysOpen.GNominal(), sysOpen.CNominal(), 1, 2); err == nil {
		t.Fatal("singular G must error")
	}
}
