package mor_test

import (
	"fmt"
	"math/cmplx"

	"lcsim/internal/circuit"
	"lcsim/internal/mor"
)

func ExampleReduce() {
	// Reduce a 30-segment RC ladder to 1 port + 4 internal states and
	// compare the port impedance at 100 MHz.
	nl := circuit.New()
	prev := "in"
	for k := 1; k <= 30; k++ {
		n := fmt.Sprintf("n%d", k)
		nl.AddR(fmt.Sprintf("R%d", k), prev, n, circuit.V(10))
		nl.AddC(fmt.Sprintf("C%d", k), n, "0", circuit.V(1e-12))
		prev = n
	}
	nl.MarkPort("in")
	sys, _ := circuit.AssembleVariational(nl)
	sys.SetPortConductance([]float64{1e-3})
	rom, _ := mor.Reduce(sys.GNominal(), sys.CNominal(), 1, 4)

	s := complex(0, 2*3.141592653589793*1e8)
	zFull, _ := mor.PortImpedance(sys.GNominal(), sys.CNominal(), 1, s)
	zRom, _ := rom.ROMImpedance(s)
	rel := cmplx.Abs(zRom.At(0, 0)-zFull.At(0, 0)) / cmplx.Abs(zFull.At(0, 0))
	fmt.Printf("order %d, relative error < 1%%: %v\n", rom.Q(), rel < 0.01)
	// Output: order 5, relative error < 1%: true
}

func ExampleBuildVariational() {
	// Pre-characterize a variational library over one parameter and
	// evaluate it at two corners — no re-reduction per sample.
	nl := circuit.New()
	nl.AddR("R1", "in", "n1", circuit.VarV(10, "p", 5.0))
	nl.AddC("C1", "n1", "0", circuit.VarV(1e-12, "p", 1e-13))
	nl.AddR("R2", "n1", "n2", circuit.V(10))
	nl.AddC("C2", "n2", "0", circuit.V(1e-12))
	nl.MarkPort("in")
	sys, _ := circuit.AssembleVariational(nl)
	sys.SetPortConductance([]float64{1e-2})
	lib, _ := mor.BuildVariational(sys, mor.BuildOptions{Order: 2})
	fmt.Println(lib.Params, lib.Np, lib.Q)
	// Output: [p] 1 3
}
