package mor

import (
	"math"
	"math/cmplx"
	"testing"

	"lcsim/internal/circuit"
	"lcsim/internal/interconnect"
	"lcsim/internal/mat"
	"lcsim/internal/sparse"
)

// ladderSystem builds a 1-port RC ladder with nSeg segments and returns the
// assembled variational system (port conductance g0 folded in).
func ladderSystem(t *testing.T, nSeg int, g0 float64, variational bool) *circuit.VarSystem {
	t.Helper()
	nl := circuit.New()
	rv := circuit.V(10.0)
	cv := circuit.V(1e-12)
	if variational {
		rv = circuit.VarV(10.0, "p", 50.0)
		cv = circuit.VarV(1e-12, "p", 1e-11)
	}
	prev := "in"
	for k := 1; k <= nSeg; k++ {
		n := "n" + string(rune('a'+k%26)) + string(rune('0'+k/26))
		nl.AddR("R"+n, prev, n, rv)
		nl.AddC("C"+n, n, "0", cv)
		prev = n
	}
	nl.MarkPort("in")
	sys, err := circuit.AssembleVariational(nl)
	if err != nil {
		t.Fatal(err)
	}
	if g0 > 0 {
		if err := sys.SetPortConductance([]float64{g0}); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestReduceBlockStructure(t *testing.T) {
	sys := ladderSystem(t, 20, 1e-3, false)
	rom, err := Reduce(sys.GNominal(), sys.CNominal(), sys.Np, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rom.Q() != 5 {
		t.Fatalf("Q = %d, want 5 (1 port + 4 internal)", rom.Q())
	}
	// Gr must be block diagonal: port-internal coupling eliminated
	// (the paper's eq. 5 structure).
	for j := rom.Np; j < rom.Q(); j++ {
		for i := 0; i < rom.Np; i++ {
			if math.Abs(rom.Gr.At(i, j)) > 1e-9*rom.Gr.MaxAbs() {
				t.Fatalf("Gr port-internal block not zero at (%d,%d): %g", i, j, rom.Gr.At(i, j))
			}
		}
	}
	if !rom.Gr.IsSymmetric(1e-9 * rom.Gr.MaxAbs()) {
		t.Fatal("nominal Gr must be symmetric (congruence of symmetric G)")
	}
	if !rom.Cr.IsSymmetric(1e-9 * rom.Cr.MaxAbs()) {
		t.Fatal("nominal Cr must be symmetric")
	}
}

func TestReduceMatchesFullImpedance(t *testing.T) {
	sys := ladderSystem(t, 30, 1e-3, false)
	g, c := sys.GNominal(), sys.CNominal()
	rom, err := Reduce(g, c, sys.Np, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Compare Z(s) over the band where the ladder has its dominant poles.
	// tau per segment ~ 10Ω·1pF; full ladder tau ~ n²·RC/2 ≈ 4.5e-9.
	for _, f := range []float64{1e6, 1e7, 1e8, 5e8} {
		s := complex(0, 2*math.Pi*f)
		zFull, err := PortImpedance(g, c, sys.Np, s)
		if err != nil {
			t.Fatal(err)
		}
		zRom, err := rom.ROMImpedance(s)
		if err != nil {
			t.Fatal(err)
		}
		rel := cmplx.Abs(zRom.At(0, 0)-zFull.At(0, 0)) / cmplx.Abs(zFull.At(0, 0))
		if rel > 0.02 {
			t.Fatalf("ROM impedance error %.3g at f=%g (Z=%v vs %v)", rel, f, zRom.At(0, 0), zFull.At(0, 0))
		}
	}
}

func TestReduceDCExact(t *testing.T) {
	// At s=0 the split congruence preserves the DC input conductance
	// exactly (A is the exact Schur complement).
	sys := ladderSystem(t, 25, 2e-3, false)
	g, c := sys.GNominal(), sys.CNominal()
	rom, err := Reduce(g, c, sys.Np, 2)
	if err != nil {
		t.Fatal(err)
	}
	zFull, err := PortImpedance(g, c, sys.Np, 0)
	if err != nil {
		t.Fatal(err)
	}
	zRom, err := rom.ROMImpedance(0)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(zRom.At(0, 0)-zFull.At(0, 0)) > 1e-9*cmplx.Abs(zFull.At(0, 0)) {
		t.Fatalf("DC impedance not exact: %v vs %v", zRom.At(0, 0), zFull.At(0, 0))
	}
}

func TestReduceMultiport(t *testing.T) {
	// 3 coupled lines, 3 ports; the reduced multiport must reproduce the
	// transfer impedances including coupling.
	bus := interconnect.BuildBus(interconnect.Wire180, 3, 30, 1, false)
	for _, n := range bus.In {
		bus.Netlist.MarkPort(n)
	}
	sys, err := circuit.AssembleVariational(bus.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPortConductance([]float64{1e-3, 1e-3, 1e-3}); err != nil {
		t.Fatal(err)
	}
	g, c := sys.GNominal(), sys.CNominal()
	rom, err := Reduce(g, c, sys.Np, 9)
	if err != nil {
		t.Fatal(err)
	}
	s := complex(0, 2*math.Pi*1e8)
	zFull, err := PortImpedance(g, c, sys.Np, s)
	if err != nil {
		t.Fatal(err)
	}
	zRom, err := rom.ROMImpedance(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			d := cmplx.Abs(zRom.At(i, j) - zFull.At(i, j))
			if d > 0.05*cmplx.Abs(zFull.At(0, 0)) {
				t.Fatalf("multiport Z(%d,%d) error %g", i, j, d)
			}
		}
	}
}

func TestReduceErrors(t *testing.T) {
	sys := ladderSystem(t, 5, 1e-3, false)
	if _, err := Reduce(sys.GNominal(), sys.CNominal(), 0, 2); err == nil {
		t.Fatal("np=0 must error")
	}
	if _, err := Reduce(sys.GNominal(), sys.CNominal(), sys.N, 2); err == nil {
		t.Fatal("all-ports must error (nothing to reduce)")
	}
}

func TestReduceSingularInternal(t *testing.T) {
	// An internal node with no conductive path: Gii singular.
	nl := circuit.New()
	nl.AddR("R1", "in", "0", circuit.V(10))
	nl.AddC("C1", "in", "float", circuit.V(1e-12))
	nl.AddC("C2", "float", "0", circuit.V(1e-12))
	nl.MarkPort("in")
	sys, err := circuit.AssembleVariational(nl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reduce(sys.GNominal(), sys.CNominal(), sys.Np, 1); err == nil {
		t.Fatal("singular internal block must error")
	}
}

func TestBuildVariationalNominalMatchesReduce(t *testing.T) {
	sys := ladderSystem(t, 20, 1e-3, true)
	vr, err := BuildVariational(sys, BuildOptions{Order: 4})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Reduce(sys.GNominal(), sys.CNominal(), sys.Np, 4)
	if err != nil {
		t.Fatal(err)
	}
	nom := vr.Nominal()
	for i := 0; i < nom.Q(); i++ {
		for j := 0; j < nom.Q(); j++ {
			if math.Abs(nom.Gr.At(i, j)-direct.Gr.At(i, j)) > 1e-9*direct.Gr.MaxAbs() {
				t.Fatalf("nominal Gr differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestVariationalFirstOrderAccuracy(t *testing.T) {
	// For a small parameter sample, the library evaluation must agree with
	// a full re-reduction at that sample to first order.
	sys := ladderSystem(t, 20, 1e-3, true)
	vr, err := BuildVariational(sys, BuildOptions{Order: 4})
	if err != nil {
		t.Fatal(err)
	}
	w := map[string]float64{"p": 0.01}
	lib := vr.At(w)
	direct, err := Reduce(sys.GFirstOrder(w), sys.CFirstOrder(w), sys.Np, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Compare port impedances (basis-independent) rather than raw matrices.
	s := complex(0, 2*math.Pi*1e8)
	zLib, err := lib.ROMImpedance(s)
	if err != nil {
		t.Fatal(err)
	}
	zDir, err := direct.ROMImpedance(s)
	if err != nil {
		t.Fatal(err)
	}
	rel := cmplx.Abs(zLib.At(0, 0)-zDir.At(0, 0)) / cmplx.Abs(zDir.At(0, 0))
	if rel > 0.01 {
		t.Fatalf("library vs direct re-reduction differ by %.3g at small w", rel)
	}
}

func TestVariationalSensitivityNonzero(t *testing.T) {
	sys := ladderSystem(t, 10, 1e-3, true)
	vr, err := BuildVariational(sys, BuildOptions{Order: 3})
	if err != nil {
		t.Fatal(err)
	}
	if vr.DGr["p"].MaxAbs() == 0 {
		t.Fatal("dGr must be nonzero for a variational resistor")
	}
	if vr.DCr["p"].MaxAbs() == 0 {
		t.Fatal("dCr must be nonzero for a variational capacitor")
	}
}

func TestVariationalLosesCongruenceStructure(t *testing.T) {
	// The first-order evaluated Gr(w) generally loses the exact
	// block-diagonal congruence structure — the root cause of the paper's
	// passivity problem. Verify the off-diagonal block becomes nonzero.
	sys := ladderSystem(t, 20, 1e-3, true)
	vr, err := BuildVariational(sys, BuildOptions{Order: 4})
	if err != nil {
		t.Fatal(err)
	}
	rom := vr.At(map[string]float64{"p": 0.1})
	off := 0.0
	for i := 0; i < rom.Np; i++ {
		for j := rom.Np; j < rom.Q(); j++ {
			off = math.Max(off, math.Abs(rom.Gr.At(i, j)))
		}
	}
	if off == 0 {
		t.Fatal("expected nonzero port-internal Gr coupling at w != 0")
	}
}

func TestExtractHelper(t *testing.T) {
	tr := sparse.NewTriplet(4)
	tr.Add(0, 0, 1)
	tr.Add(1, 2, 5)
	tr.Add(3, 3, 7)
	c := tr.Compile()
	sub := c.Extract([]int{1, 3}, []int{2, 3})
	if sub.At(0, 0) != 5 || sub.At(1, 1) != 7 {
		t.Fatalf("Extract wrong: %v %v", sub.At(0, 0), sub.At(1, 1))
	}
	if sub.At(0, 1) != 0 {
		t.Fatal("Extract must not invent entries")
	}
}

func TestReducePRIMAMatchesFull(t *testing.T) {
	sys := ladderSystem(t, 30, 1e-3, false)
	g, c := sys.GNominal(), sys.CNominal()
	rom, err := ReducePRIMA(g, c, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0, 1e7, 1e8, 5e8} {
		s := complex(0, 2*math.Pi*f)
		zFull, err := PortImpedance(g, c, 1, s)
		if err != nil {
			t.Fatal(err)
		}
		zRom, err := rom.ROMImpedance(s)
		if err != nil {
			t.Fatal(err)
		}
		rel := cmplx.Abs(zRom.At(0, 0)-zFull.At(0, 0)) / cmplx.Abs(zFull.At(0, 0))
		if rel > 0.02 {
			t.Fatalf("PRIMA impedance error %.3g at f=%g", rel, f)
		}
	}
}

func TestReducePRIMAIsPassiveCongruence(t *testing.T) {
	// A true congruence of symmetric nonneg pencils keeps them symmetric
	// nonneg: all poles of the reduced pencil lie in the closed left half
	// plane, whatever the order.
	sys := ladderSystem(t, 25, 1e-3, false)
	rom, err := ReducePRIMA(sys.GNominal(), sys.CNominal(), 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !rom.Gr.IsSymmetric(1e-9*rom.Gr.MaxAbs()) || !rom.Cr.IsSymmetric(1e-9*rom.Cr.MaxAbs()) {
		t.Fatal("congruence must preserve symmetry")
	}
	fg, err := mat.FactorLU(rom.Gr)
	if err != nil {
		t.Fatal(err)
	}
	tm := fg.SolveMat(rom.Cr).Scale(-1)
	vals, err := mat.Eigenvalues(tm)
	if err != nil {
		t.Fatal(err)
	}
	for _, lam := range vals {
		if cmplx.Abs(lam) < 1e-30 {
			continue
		}
		pole := 1 / lam
		if real(pole) > 0 {
			t.Fatalf("PRIMA congruence produced unstable pole %v", pole)
		}
	}
}

func TestReducePRIMAvsSplitCongruence(t *testing.T) {
	// Both reductions approximate the same transfer function; at matched
	// order they agree with each other within the full-model error.
	sys := ladderSystem(t, 30, 1e-3, false)
	g, c := sys.GNominal(), sys.CNominal()
	pact, err := Reduce(g, c, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	prima, err := ReducePRIMA(g, c, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := complex(0, 2*math.Pi*1e8)
	z1, err := pact.ROMImpedance(s)
	if err != nil {
		t.Fatal(err)
	}
	z2, err := prima.ROMImpedance(s)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(z1.At(0, 0)-z2.At(0, 0)) > 0.03*cmplx.Abs(z1.At(0, 0)) {
		t.Fatalf("PACT %v vs PRIMA %v", z1.At(0, 0), z2.At(0, 0))
	}
}

func TestReducePRIMAErrors(t *testing.T) {
	sys := ladderSystem(t, 5, 1e-3, false)
	if _, err := ReducePRIMA(sys.GNominal(), sys.CNominal(), 0, 2); err == nil {
		t.Fatal("np=0 must error")
	}
	open := ladderSystem(t, 5, 0, false)
	if _, err := ReducePRIMA(open.GNominal(), open.CNominal(), 1, 2); err == nil {
		t.Fatal("singular G must error")
	}
}

func TestReduceMorePortsThanInternals(t *testing.T) {
	// 2 ports, 1 internal node: exercises the rectangular Extract padding.
	nl := circuit.New()
	nl.AddR("R1", "p1", "mid", circuit.V(10))
	nl.AddR("R2", "mid", "p2", circuit.V(20))
	nl.AddC("C1", "mid", "0", circuit.V(1e-12))
	nl.MarkPort("p1")
	nl.MarkPort("p2")
	sys, err := circuit.AssembleVariational(nl)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPortConductance([]float64{1e-3, 1e-3}); err != nil {
		t.Fatal(err)
	}
	rom, err := Reduce(sys.GNominal(), sys.CNominal(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rom.Q() != 3 { // 2 ports + 1 internal (Krylov space saturates)
		t.Fatalf("Q = %d, want 3", rom.Q())
	}
	s := complex(0, 2*math.Pi*1e8)
	zFull, err := PortImpedance(sys.GNominal(), sys.CNominal(), 2, s)
	if err != nil {
		t.Fatal(err)
	}
	zRom, err := rom.ROMImpedance(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(zRom.At(i, j)-zFull.At(i, j)) > 1e-6*cmplx.Abs(zFull.At(i, i)) {
				t.Fatalf("exact-order reduction must reproduce Z at (%d,%d)", i, j)
			}
		}
	}
}

func TestVariationalSensitivitiesSymmetric(t *testing.T) {
	// dGr = dTᵀG0T0 + T0ᵀdG T0 + T0ᵀG0 dT is symmetric when G0 and dG
	// are (congruence-derivative structure).
	sys := ladderSystem(t, 15, 1e-3, true)
	vr, err := BuildVariational(sys, BuildOptions{Order: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*mat.Dense{vr.DGr["p"], vr.DCr["p"]} {
		if !m.IsSymmetric(1e-9 * (1 + m.MaxAbs())) {
			t.Fatal("variational sensitivity lost symmetry")
		}
	}
}

func TestVariationalDeltaInsensitivity(t *testing.T) {
	// The characterized library should not depend strongly on the
	// finite-difference delta (first-order object).
	sys := ladderSystem(t, 15, 1e-3, true)
	a, err := BuildVariational(sys, BuildOptions{Order: 3, Delta: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildVariational(sys, BuildOptions{Order: 3, Delta: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	w := map[string]float64{"p": 0.05}
	s := complex(0, 2*math.Pi*1e8)
	za, err := a.At(w).ROMImpedance(s)
	if err != nil {
		t.Fatal(err)
	}
	zb, err := b.At(w).ROMImpedance(s)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(za.At(0, 0)-zb.At(0, 0)) > 0.01*cmplx.Abs(za.At(0, 0)) {
		t.Fatalf("library depends on delta: %v vs %v", za.At(0, 0), zb.At(0, 0))
	}
}
