package mor

import (
	"fmt"

	"lcsim/internal/circuit"
	"lcsim/internal/mat"
	"lcsim/internal/sparse"
)

// VarROM is the pre-characterized variational reduced-order model library
// of paper eqs. (8)–(11): nominal reduced matrices plus first-order
// sensitivities with respect to each global parameter. Evaluating the
// library at a parameter sample is a few small dense AXPYs — the whole
// point of the method is that no re-reduction is needed per sample.
//
// Because the higher-order congruence terms are truncated (eq. 11), the
// evaluated models are NOT guaranteed passive or stable; internal/poleres
// implements the paper's stabilization.
type VarROM struct {
	Np, Q  int
	Params []string

	Gr0, Cr0 *mat.Dense
	DGr, DCr map[string]*mat.Dense

	// Characterization diagnostics.
	Delta float64 // finite-difference step used for dX
}

// BuildOptions controls variational characterization.
type BuildOptions struct {
	Order int     // internal Krylov order k (reduced size = Np + k)
	Delta float64 // parameter step for variational Krylov vectors (default 1e-3)
}

// BuildVariational pre-characterizes the variational ROM library for the
// linear system. This is the paper's Table 1 "Construction" step: the
// port conductances G_SC must already be folded into sys (SetPortConductance)
// so the *effective* load is reduced.
func BuildVariational(sys *circuit.VarSystem, opts BuildOptions) (*VarROM, error) {
	if opts.Order < 1 {
		return nil, fmt.Errorf("mor: order must be >= 1, got %d", opts.Order)
	}
	delta := opts.Delta
	if delta <= 0 {
		delta = 1e-3
	}
	g0 := sys.GNominal()
	c0 := sys.CNominal()
	p0, err := buildProjection(g0, c0, sys.Np, opts.Order)
	if err != nil {
		return nil, fmt.Errorf("mor: nominal projection: %w", err)
	}
	n := sys.N
	t0 := p0.full(n)
	q := t0.Cols()
	out := &VarROM{
		Np: sys.Np, Q: q, Params: sys.Params, Delta: delta,
		Gr0: congruenceSparse(g0, t0),
		Cr0: congruenceSparse(c0, t0),
		DGr: map[string]*mat.Dense{},
		DCr: map[string]*mat.Dense{},
	}
	for _, prm := range sys.Params {
		w := map[string]float64{prm: delta}
		gp := sys.GFirstOrder(w)
		cp := sys.CFirstOrder(w)
		pp, err := buildProjection(gp, cp, sys.Np, opts.Order)
		if err != nil {
			return nil, fmt.Errorf("mor: projection at %s+δ: %w", prm, err)
		}
		tp := pp.full(n)
		if tp.Cols() != q {
			return nil, fmt.Errorf("mor: Krylov dimension changed under %s perturbation (%d vs %d); reduce order or delta", prm, tp.Cols(), q)
		}
		alignColumns(t0, tp, sys.Np)
		// dT = (T(δ) − T0)/δ — the variational Krylov vectors of eq. (8).
		dt := mat.Diff(tp, t0).Scale(1 / delta)
		// eq. (11): dGr = dTᵀG0T0 + T0ᵀdG·T0 + T0ᵀG0dT  (h.o.t. dropped).
		dg := sys.DG[prm]
		dc := sys.DC[prm]
		out.DGr[prm] = firstOrderReduced(g0, dg, t0, dt)
		out.DCr[prm] = firstOrderReduced(c0, dc, t0, dt)
	}
	return out, nil
}

// firstOrderReduced computes dTᵀ·A0·T0 + T0ᵀ·dA·T0 + T0ᵀ·A0·dT.
func firstOrderReduced(a0, da *sparse.CSC, t0, dt *mat.Dense) *mat.Dense {
	term1 := crossCongruence(a0, dt, t0) // dTᵀ A0 T0
	term2 := congruenceSparse(da, t0)    // T0ᵀ dA T0
	term3 := crossCongruence(a0, t0, dt) // (T0ᵀ A0 dT) = term1ᵀ only when A0 symmetric
	return term1.AddScaled(1, term2).AddScaled(1, term3)
}

// crossCongruence computes XᵀAY with A sparse.
func crossCongruence(a *sparse.CSC, x, y *mat.Dense) *mat.Dense {
	qx, qy := x.Cols(), y.Cols()
	out := mat.NewDense(qx, qy)
	for j := 0; j < qy; j++ {
		ay := a.MulVec(y.Col(j))
		for i := 0; i < qx; i++ {
			out.Set(i, j, mat.Dot(x.Col(i), ay))
		}
	}
	return out
}

// alignColumns flips the sign of tp's internal-basis columns whose
// orientation disagrees with t0 (the Krylov orthonormalization determines
// columns only up to sign; continuity in δ requires alignment).
func alignColumns(t0, tp *mat.Dense, np int) {
	n := t0.Rows()
	for j := np; j < t0.Cols(); j++ {
		dot := 0.0
		for i := 0; i < n; i++ {
			dot += t0.At(i, j) * tp.At(i, j)
		}
		if dot < 0 {
			for i := 0; i < n; i++ {
				tp.Set(i, j, -tp.At(i, j))
			}
		}
	}
}

// At evaluates the library at a parameter sample (Table 1 "Evaluation"
// step 1), returning the first-order reduced model.
func (v *VarROM) At(w map[string]float64) *ROM {
	gr := v.Gr0.Clone()
	cr := v.Cr0.Clone()
	for _, p := range v.Params {
		if wv := w[p]; wv != 0 {
			gr.AddScaled(wv, v.DGr[p])
			cr.AddScaled(wv, v.DCr[p])
		}
	}
	return &ROM{Np: v.Np, Gr: gr, Cr: cr}
}

// Nominal returns the nominal reduced model.
func (v *VarROM) Nominal() *ROM {
	return &ROM{Np: v.Np, Gr: v.Gr0.Clone(), Cr: v.Cr0.Clone()}
}
