package mor

import (
	"fmt"

	"lcsim/internal/mat"
	"lcsim/internal/sparse"
)

// Moments computes the first k block moments of the multiport impedance
// Z(s) = P(G + sC)⁻¹Pᵀ expanded about s = 0:
//
//	Z(s) = M0 + M1·s + M2·s² + …,   M_j = (−1)^j · P (G⁻¹C)^j G⁻¹ Pᵀ
//
// — the quantities AWE matches and the moment-matching property PRIMA's
// congruence projection guarantees for the reduced model. P selects the
// first np indices.
func Moments(g, c *sparse.CSC, np, k int) ([]*mat.Dense, error) {
	n := g.N()
	if np <= 0 || np > n {
		return nil, fmt.Errorf("mor: np = %d out of range for n = %d", np, n)
	}
	lu, err := sparse.FactorLU(g, 0.1)
	if err != nil {
		return nil, fmt.Errorf("mor: Moments: G singular: %w", err)
	}
	// Columns of the current Krylov block, starting at G⁻¹Pᵀ.
	cols := make([][]float64, np)
	for j := 0; j < np; j++ {
		e := make([]float64, n)
		e[j] = 1
		cols[j] = lu.Solve(e)
	}
	out := make([]*mat.Dense, k)
	signFlip := 1.0
	for m := 0; m < k; m++ {
		mm := mat.NewDense(np, np)
		for j := 0; j < np; j++ {
			for i := 0; i < np; i++ {
				mm.Set(i, j, signFlip*cols[j][i])
			}
		}
		out[m] = mm
		if m == k-1 {
			break
		}
		for j := 0; j < np; j++ {
			cols[j] = lu.Solve(c.MulVec(cols[j]))
		}
		signFlip = -signFlip
	}
	return out, nil
}

// ROMMoments computes the same expansion for a dense reduced model.
func (r *ROM) ROMMoments(k int) ([]*mat.Dense, error) {
	q := r.Q()
	lu, err := mat.FactorLU(r.Gr)
	if err != nil {
		return nil, fmt.Errorf("mor: ROMMoments: Gr singular: %w", err)
	}
	cols := make([][]float64, r.Np)
	for j := 0; j < r.Np; j++ {
		e := make([]float64, q)
		e[j] = 1
		cols[j] = lu.Solve(e)
	}
	out := make([]*mat.Dense, k)
	signFlip := 1.0
	for m := 0; m < k; m++ {
		mm := mat.NewDense(r.Np, r.Np)
		for j := 0; j < r.Np; j++ {
			for i := 0; i < r.Np; i++ {
				mm.Set(i, j, signFlip*cols[j][i])
			}
		}
		out[m] = mm
		if m == k-1 {
			break
		}
		for j := 0; j < r.Np; j++ {
			cols[j] = lu.Solve(mat.MulVec(r.Cr, cols[j]))
		}
		signFlip = -signFlip
	}
	return out, nil
}

// ElmoreDelays returns the per-port Elmore delay estimate M1_ii / M0_ii
// (the first moment of the impulse response seen at each port), a widely
// used sanity metric for RC reductions.
func ElmoreDelays(g, c *sparse.CSC, np int) ([]float64, error) {
	ms, err := Moments(g, c, np, 2)
	if err != nil {
		return nil, err
	}
	out := make([]float64, np)
	for i := 0; i < np; i++ {
		m0 := ms[0].At(i, i)
		if m0 == 0 {
			return nil, fmt.Errorf("mor: port %d has zero DC impedance", i)
		}
		out[i] = -ms[1].At(i, i) / m0
	}
	return out, nil
}
