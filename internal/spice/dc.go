package spice

import "fmt"

// dcOperatingPoint solves for the t=0 bias point with capacitors open.
// It first attempts direct Newton from a zero initial guess and falls back
// to source stepping (ramping all independent sources from 0 to full
// value), the standard SPICE continuation strategy.
func (s *Simulator) dcOperatingPoint() ([]float64, int, error) {
	v := make([]float64, s.dim)
	iters := 0
	// The damped DC Newton may need many more iterations than a transient
	// step whose initial guess is already close.
	savedMax := s.opts.MaxNewton
	s.opts.MaxNewton = savedMax * 10
	defer func() { s.opts.MaxNewton = savedMax }()
	solveAt := func(alpha float64, guess []float64) ([]float64, error) {
		base := s.static.Clone()
		// Tiny conductance to ground on every node keeps purely capacitive
		// nodes from making the DC matrix singular.
		for i := 0; i < s.nNode; i++ {
			base.Add(i, i, 1e-12)
		}
		rhs := make([]float64, s.dim)
		for _, src := range s.nl.ISources {
			iv := alpha * src.W.At(0)
			if src.A >= 0 {
				rhs[int(src.A)] -= iv
			}
			if src.B >= 0 {
				rhs[int(src.B)] += iv
			}
		}
		for i, src := range s.nl.VSources {
			rhs[s.nNode+i] = alpha * src.W.At(0)
		}
		before := s.stats.NewtonIterations
		out, err := s.newtonSolve(base, rhs, guess, 0)
		iters += s.stats.NewtonIterations - before
		return out, err
	}
	// Direct attempt.
	if out, err := solveAt(1, v); err == nil {
		return out, iters, nil
	}
	// Source stepping.
	const steps = 10
	guess := v
	for k := 1; k <= steps; k++ {
		alpha := float64(k) / steps
		out, err := solveAt(alpha, guess)
		if err != nil {
			return nil, iters, fmt.Errorf("spice: DC source stepping failed at α=%.2f: %w", alpha, err)
		}
		guess = out
	}
	return guess, iters, nil
}

// OperatingPoint exposes the DC solution for testing and for chord-model
// characterization: it returns the node voltage vector indexed by
// circuit.NodeID.
func (s *Simulator) OperatingPoint() ([]float64, error) {
	if err := s.buildStatic(); err != nil {
		return nil, err
	}
	v, _, err := s.dcOperatingPoint()
	if err != nil {
		return nil, err
	}
	return v[:s.nNode], nil
}
