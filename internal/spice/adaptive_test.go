package spice

import (
	"math"
	"testing"

	"lcsim/internal/circuit"
	"lcsim/internal/device"
)

func rcStepNetlist() *circuit.Netlist {
	nl := circuit.New()
	nl.AddV("V1", "in", "0", circuit.SatRamp{V0: 0, V1: 1, Start: 1e-10, Slew: 1e-11})
	nl.AddR("R1", "in", "out", circuit.V(1000))
	nl.AddC("C1", "out", "0", circuit.V(1e-12))
	return nl
}

func TestAdaptiveRCAccuracy(t *testing.T) {
	sim, err := NewSimulator(rcStepNetlist(), Options{
		DT: 1e-11, TStop: 6e-9, Adaptive: true, LTETol: 2e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	tau := 1e-9
	t0 := 1.05e-10 // effective step midpoint of the fast ramp
	for i, tt := range res.T {
		if tt < 3e-10 {
			continue
		}
		want := 1 - math.Exp(-(tt-t0)/tau)
		if math.Abs(res.V["out"][i]-want) > 0.01 {
			t.Fatalf("adaptive RC at t=%g: %g want %g", tt, res.V["out"][i], want)
		}
	}
	// Final value settled.
	if got := res.V["out"][len(res.T)-1]; math.Abs(got-1) > 5e-3 {
		t.Fatalf("final value %g", got)
	}
}

func TestAdaptiveTakesFewerSteps(t *testing.T) {
	run := func(adaptive bool) Stats {
		sim, err := NewSimulator(rcStepNetlist(), Options{
			DT: 1e-11, TStop: 20e-9, Adaptive: adaptive, LTETol: 1e-3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run([]string{"out"})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	fixed := run(false)
	adaptive := run(true)
	// Long flat tail: the adaptive run must spend far fewer steps.
	if adaptive.Steps >= fixed.Steps/2 {
		t.Fatalf("adaptive %d steps vs fixed %d — step control ineffective", adaptive.Steps, fixed.Steps)
	}
}

func TestAdaptiveTimePointsIncrease(t *testing.T) {
	sim, err := NewSimulator(rcStepNetlist(), Options{DT: 1e-11, TStop: 5e-9, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.T); i++ {
		if res.T[i] <= res.T[i-1] {
			t.Fatalf("time points not increasing at %d", i)
		}
	}
	// Must end exactly at TStop.
	if math.Abs(res.T[len(res.T)-1]-5e-9) > 1e-15 {
		t.Fatalf("final time %g", res.T[len(res.T)-1])
	}
}

func TestAdaptiveInverterMatchesFixed(t *testing.T) {
	build := func() *circuit.Netlist {
		nl := circuit.New()
		nl.AddV("VDD", "vdd", "0", circuit.DC(1.8))
		nl.AddV("VIN", "in", "0", circuit.SatRamp{V0: 0, V1: 1.8, Start: 0.2e-9, Slew: 0.1e-9})
		if err := device.INV.Instantiate(nl, "u1", []string{"in"}, "out", device.BuildOpts{Tech: device.Tech180, Drive: 2}); err != nil {
			t.Fatal(err)
		}
		nl.AddC("CL", "out", "0", circuit.V(20e-15))
		return nl
	}
	simF, err := NewSimulator(build(), Options{DT: 1e-12, TStop: 1.5e-9, Models: device.Tech180})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := simF.Run([]string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	simA, err := NewSimulator(build(), Options{DT: 2e-12, TStop: 1.5e-9, Models: device.Tech180, Adaptive: true, LTETol: 5e-4})
	if err != nil {
		t.Fatal(err)
	}
	adap, err := simA.Run([]string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := fixed.Waveform("out")
	if err != nil {
		t.Fatal(err)
	}
	wa, err := adap.Waveform("out")
	if err != nil {
		t.Fatal(err)
	}
	cf := wf.CrossTime(0.9, -1)
	ca := wa.CrossTime(0.9, -1)
	if math.Abs(cf-ca) > 5e-12 {
		t.Fatalf("adaptive crossing %g vs fixed %g", ca, cf)
	}
}
