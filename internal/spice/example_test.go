package spice_test

import (
	"fmt"

	"lcsim/internal/circuit"
	"lcsim/internal/device"
	"lcsim/internal/spice"
)

func ExampleSimulator_Run() {
	// An inverter driving a capacitive load through the Newton baseline.
	nl := circuit.New()
	nl.AddV("VDD", "vdd", "0", circuit.DC(1.8))
	nl.AddV("VIN", "in", "0", circuit.SatRamp{V0: 0, V1: 1.8, Start: 0.2e-9, Slew: 0.1e-9})
	if err := device.INV.Instantiate(nl, "u1", []string{"in"}, "out", device.BuildOpts{
		Tech: device.Tech180, Drive: 2,
	}); err != nil {
		panic(err)
	}
	nl.AddC("CL", "out", "0", circuit.V(20e-15))
	sim, err := spice.NewSimulator(nl, spice.Options{
		DT: 2e-12, TStop: 1.5e-9, Models: device.Tech180,
	})
	if err != nil {
		panic(err)
	}
	res, err := sim.Run([]string{"out"})
	if err != nil {
		panic(err)
	}
	wf, _ := res.Waveform("out")
	fmt.Printf("output falls through 0.9 V: %v\n", wf.CrossTime(0.9, -1) > 0)
	// Output: output falls through 0.9 V: true
}
