// Package spice implements the reference Newton–Raphson transient
// simulator the framework is benchmarked against (the role SPICE3f5 plays
// in the paper). It performs full MNA assembly with nonlinear Level-1
// devices, trapezoidal integration with a backward-Euler start, sparse LU
// factorization on every Newton iteration, DC operating-point solution
// with source stepping, and supports stamping dense reduced-order
// macromodels as subcircuits — which is how the paper demonstrates that
// non-passive variational macromodels make a general-purpose simulator
// diverge (§5.1).
package spice

import (
	"errors"
	"fmt"

	"lcsim/internal/circuit"
	"lcsim/internal/device"
	"lcsim/internal/mat"
	"lcsim/internal/sparse"
)

// ErrNoConvergence reports Newton failure (possibly macromodel-induced
// divergence).
var ErrNoConvergence = errors.New("spice: newton iteration did not converge")

// Options configures a simulation run.
type Options struct {
	DT    float64 // fixed timestep, s
	TStop float64 // end time, s

	MaxNewton int     // per-timestep Newton limit (default 50)
	AbsTol    float64 // voltage tolerance, V (default 1e-6)
	RelTol    float64 // relative tolerance (default 1e-4)
	VMax      float64 // divergence threshold, V (default 1e3)
	DVLimit   float64 // per-iteration voltage-change damping, V (default 2; <0 disables)

	// Adaptive enables local-truncation-error timestep control: DT is the
	// initial step, bounded by [DTMin, DTMax] (defaults DT/64 and 8·DT),
	// with per-node predictor error kept under LTETol volts (default 1e-3).
	Adaptive bool
	DTMin    float64
	DTMax    float64
	LTETol   float64

	W      map[string]float64 // variation-parameter sample for element values
	Models *device.ModelSet   // device model set (required when MOSFETs present)
}

func (o *Options) setDefaults() error {
	if o.DT <= 0 || o.TStop <= 0 {
		return fmt.Errorf("spice: DT and TStop must be positive, got %g, %g", o.DT, o.TStop)
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 50
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-6
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-4
	}
	if o.VMax <= 0 {
		o.VMax = 1e3
	}
	if o.DVLimit == 0 {
		o.DVLimit = 2
	}
	if o.Adaptive {
		if o.DTMin <= 0 {
			o.DTMin = o.DT / 64
		}
		if o.DTMax <= 0 {
			o.DTMax = 8 * o.DT
		}
		if o.LTETol <= 0 {
			o.LTETol = 1e-3
		}
	}
	return nil
}

// Stats counts simulation work, the quantities the paper's speedup tables
// are built from.
type Stats struct {
	Steps            int
	NewtonIterations int
	LUFactorizations int
}

// Result holds a transient simulation outcome.
type Result struct {
	T      []float64
	V      map[string][]float64 // probed node waveforms
	Stats  Stats
	DCIter int
}

// Waveform returns the probed node waveform as a PWL.
func (r *Result) Waveform(node string) (*circuit.PWL, error) {
	v, ok := r.V[node]
	if !ok {
		return nil, fmt.Errorf("spice: node %q was not probed", node)
	}
	return circuit.NewPWL(r.T, v)
}

// Macromodel is a dense reduced-order admittance block Y(s) = Gr + s·Cr
// whose first len(Ports) indices attach to circuit nodes and whose
// remaining indices become extra MNA unknowns.
type Macromodel struct {
	Gr, Cr *mat.Dense
	Ports  []circuit.NodeID
}

// capInst is a linear capacitor flattened for integration (includes device
// capacitances).
type capInst struct {
	a, b int // MNA indices, -1 for ground
	c    float64
}

// mosInst is a MOSFET with resolved model and MNA terminal indices.
type mosInst struct {
	dev        circuit.MOSFET
	model      *device.Model
	d, g, s, b int
}

// Simulator is a configured transient engine over one netlist.
type Simulator struct {
	nl    *circuit.Netlist
	opts  Options
	nNode int
	nVsrc int
	nMac  int // extra macromodel unknowns
	dim   int

	caps   []capInst
	mos    []mosInst
	macros []*Macromodel
	macOff []int // first extra-unknown index per macromodel

	// static linear stamps (R + V-source rows), rebuilt only once
	static *sparse.Triplet

	stats Stats
}

// evalMOS linearizes one MOSFET instance at absolute terminal voltages.
func evalMOS(m mosInst, vd, vg, vs, vb float64) device.OpPoint {
	return device.EvalDevice(m.model, m.dev, vd, vg, vs, vb)
}

// NewSimulator validates and prepares a simulator.
func NewSimulator(nl *circuit.Netlist, opts Options) (*Simulator, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if len(nl.MOSFETs) > 0 && opts.Models == nil {
		return nil, fmt.Errorf("spice: netlist has MOSFETs but no model set given")
	}
	s := &Simulator{nl: nl, opts: opts, nNode: nl.NumNodes(), nVsrc: len(nl.VSources)}
	s.dim = s.nNode + s.nVsrc
	// Flatten linear capacitors.
	idx := func(n circuit.NodeID) int {
		if n == circuit.Gnd {
			return -1
		}
		return int(n)
	}
	for _, c := range nl.Capacitors {
		s.caps = append(s.caps, capInst{a: idx(c.A), b: idx(c.B), c: c.C.Eval(opts.W)})
	}
	// Resolve MOSFETs and add their constant capacitances.
	for _, m := range nl.MOSFETs {
		mod, err := opts.Models.Lookup(m.Model)
		if err != nil {
			return nil, fmt.Errorf("spice: device %s: %w", m.Name, err)
		}
		mi := mosInst{dev: m, model: mod, d: idx(m.D), g: idx(m.G), s: idx(m.S), b: idx(m.B)}
		s.mos = append(s.mos, mi)
		geom := device.Geometry{W: m.W, L: m.L, DL: m.DL, DVT: m.DVT}
		cg := mod.GateCap(geom) / 2
		cj := mod.JunctionCap(geom)
		s.caps = append(s.caps,
			capInst{a: mi.g, b: mi.s, c: cg},
			capInst{a: mi.g, b: mi.d, c: cg},
			capInst{a: mi.d, b: mi.b, c: cj},
			capInst{a: mi.s, b: mi.b, c: cj},
		)
	}
	return s, nil
}

// AddMacromodel attaches a reduced-order macromodel block. Must be called
// before Run.
func (s *Simulator) AddMacromodel(m *Macromodel) error {
	q := m.Gr.Rows()
	if m.Gr.Cols() != q || m.Cr.Rows() != q || m.Cr.Cols() != q {
		return fmt.Errorf("spice: macromodel matrices must be square and equal size")
	}
	if len(m.Ports) > q {
		return fmt.Errorf("spice: macromodel has %d ports but order %d", len(m.Ports), q)
	}
	for _, p := range m.Ports {
		if p == circuit.Gnd || int(p) >= s.nNode {
			return fmt.Errorf("spice: macromodel port %d invalid", p)
		}
	}
	s.macOff = append(s.macOff, s.dim)
	s.dim += q - len(m.Ports)
	s.nMac += q - len(m.Ports)
	s.macros = append(s.macros, m)
	return nil
}

// macIndex maps macromodel-local index k to the global MNA index.
func (s *Simulator) macIndex(mi, k int) int {
	m := s.macros[mi]
	if k < len(m.Ports) {
		return int(m.Ports[k])
	}
	return s.macOff[mi] + (k - len(m.Ports))
}

// buildStatic assembles the timestep-invariant stamps: resistors and the
// voltage-source incidence pattern, plus macromodel Gr blocks.
func (s *Simulator) buildStatic() error {
	tr := sparse.NewTriplet(s.dim)
	for _, r := range s.nl.Resistors {
		rv := r.R.Eval(s.opts.W)
		if rv <= 0 {
			return fmt.Errorf("spice: resistor %s evaluates to %g at sample", r.Name, rv)
		}
		stampG(tr, int(r.A), int(r.B), 1/rv)
	}
	for _, g := range s.nl.Conductors {
		gv := g.G.Eval(s.opts.W)
		if gv <= 0 {
			return fmt.Errorf("spice: conductor %s evaluates to %g at sample", g.Name, gv)
		}
		stampG(tr, int(g.A), int(g.B), gv)
	}
	for i, v := range s.nl.VSources {
		bi := s.nNode + i
		if v.A != circuit.Gnd {
			tr.Add(int(v.A), bi, 1)
			tr.Add(bi, int(v.A), 1)
		}
		if v.B != circuit.Gnd {
			tr.Add(int(v.B), bi, -1)
			tr.Add(bi, int(v.B), -1)
		}
	}
	for mi, m := range s.macros {
		q := m.Gr.Rows()
		for i := 0; i < q; i++ {
			gi := s.macIndex(mi, i)
			for j := 0; j < q; j++ {
				if v := m.Gr.At(i, j); v != 0 {
					tr.Add(gi, s.macIndex(mi, j), v)
				}
			}
		}
	}
	s.static = tr
	return nil
}

// stampG stamps a two-terminal conductance (indices may be -1 = ground).
func stampG(tr *sparse.Triplet, a, b int, g float64) {
	if a >= 0 {
		tr.Add(a, a, g)
	}
	if b >= 0 {
		tr.Add(b, b, g)
	}
	if a >= 0 && b >= 0 {
		tr.Add(a, b, -g)
		tr.Add(b, a, -g)
	}
}
