package spice

import (
	"fmt"
	"math"

	"lcsim/internal/sparse"
)

// transState carries the integration state through a run.
type transState struct {
	v    []float64 // current solution
	capV []float64 // per-capacitor branch voltage
	capI []float64 // per-capacitor branch current (trapezoidal memory)
	macV [][]float64
	macI [][]float64
}

// Run executes the transient analysis, probing the named nodes. With
// Options.Adaptive the timestep is controlled by a local-truncation-error
// estimate (predictor/corrector comparison), as general-purpose SPICE
// implementations do; otherwise the step is fixed at Options.DT.
func (s *Simulator) Run(probes []string) (*Result, error) {
	if err := s.buildStatic(); err != nil {
		return nil, err
	}
	probeIdx := make([]int, len(probes))
	for i, p := range probes {
		id := s.nl.Node(p)
		if id < 0 {
			return nil, fmt.Errorf("spice: cannot probe ground")
		}
		probeIdx[i] = int(id)
	}

	v0, dcIter, err := s.dcOperatingPoint()
	if err != nil {
		return nil, err
	}

	s.stats = Stats{}
	res := &Result{V: map[string][]float64{}, DCIter: dcIter}
	record := func(t float64, v []float64) {
		res.T = append(res.T, t)
		for i, p := range probes {
			res.V[p] = append(res.V[p], v[probeIdx[i]])
		}
	}

	st := &transState{v: v0}
	st.capV = make([]float64, len(s.caps))
	st.capI = make([]float64, len(s.caps))
	for k, c := range s.caps {
		st.capV[k] = vAt(st.v, c.a) - vAt(st.v, c.b)
	}
	st.macV = make([][]float64, len(s.macros))
	st.macI = make([][]float64, len(s.macros))
	for mi, m := range s.macros {
		q := m.Gr.Rows()
		st.macV[mi] = make([]float64, q)
		st.macI[mi] = make([]float64, q)
		for k := 0; k < q; k++ {
			st.macV[mi][k] = st.v[s.macIndex(mi, k)]
		}
	}
	record(0, st.v)

	if !s.opts.Adaptive {
		dt := s.opts.DT
		nSteps := int(s.opts.TStop/dt + 0.5)
		for step := 1; step <= nSteps; step++ {
			t := float64(step) * dt
			trap := step > 1
			vNew, err := s.stepOnce(st, t, dt, trap)
			if err != nil {
				res.Stats = s.stats
				return res, fmt.Errorf("at t=%.4g: %w", t, err)
			}
			s.commitStep(st, vNew, dt, trap)
			record(t, st.v)
			s.stats.Steps = step
		}
		res.Stats = s.stats
		return res, nil
	}

	// Adaptive stepping: compare the corrector solution against a linear
	// predictor built from the last two accepted points; reject and halve
	// on large deviation, grow gently when comfortably below tolerance.
	tol := s.opts.LTETol
	dtMin, dtMax := s.opts.DTMin, s.opts.DTMax
	t := 0.0
	dt := s.opts.DT
	first := true
	var vPrev []float64
	dtPrev := dt
	for t < s.opts.TStop-1e-21 {
		if dt > s.opts.TStop-t {
			dt = s.opts.TStop - t
		}
		vNew, err := s.stepOnce(st, t+dt, dt, !first)
		if err != nil {
			if dt > dtMin*1.001 {
				dt = math.Max(dt/4, dtMin)
				continue // retry smaller without committing
			}
			res.Stats = s.stats
			return res, fmt.Errorf("at t=%.4g (dt=%.3g): %w", t+dt, dt, err)
		}
		grow := false
		if !first && vPrev != nil {
			errEst := 0.0
			for i := 0; i < s.nNode; i++ {
				pred := st.v[i] + (st.v[i]-vPrev[i])*dt/dtPrev
				if e := math.Abs(vNew[i] - pred); e > errEst {
					errEst = e
				}
			}
			if errEst > tol && dt > dtMin*1.001 {
				dt = math.Max(dt/2, dtMin)
				continue // reject
			}
			grow = errEst < tol/16
		}
		vPrev = append(vPrev[:0], st.v...)
		dtPrev = dt
		s.commitStep(st, vNew, dt, !first)
		t += dt
		first = false
		record(t, st.v)
		s.stats.Steps++
		if grow && dt < dtMax {
			dt = math.Min(dt*1.5, dtMax)
		}
	}
	res.Stats = s.stats
	return res, nil
}

func vAt(v []float64, i int) float64 {
	if i < 0 {
		return 0
	}
	return v[i]
}

// stepOnce assembles and solves one candidate timestep ending at time t
// with step dt (trapezoidal when trap, else backward Euler). It does not
// mutate the integration state.
func (s *Simulator) stepOnce(st *transState, t, dt float64, trap bool) ([]float64, error) {
	base := s.static.Clone()
	rhs := make([]float64, s.dim)
	for _, src := range s.nl.ISources {
		iv := src.W.At(t)
		if src.A >= 0 {
			rhs[int(src.A)] -= iv
		}
		if src.B >= 0 {
			rhs[int(src.B)] += iv
		}
	}
	for i, src := range s.nl.VSources {
		rhs[s.nNode+i] = src.W.At(t)
	}
	for k, c := range s.caps {
		if c.c == 0 {
			continue
		}
		var geq, ieq float64
		if trap {
			geq = 2 * c.c / dt
			ieq = geq*st.capV[k] + st.capI[k]
		} else {
			geq = c.c / dt
			ieq = geq * st.capV[k]
		}
		stampG(base, c.a, c.b, geq)
		if c.a >= 0 {
			rhs[c.a] += ieq
		}
		if c.b >= 0 {
			rhs[c.b] -= ieq
		}
	}
	for mi, m := range s.macros {
		q := m.Cr.Rows()
		scale := 1.0 / dt
		if trap {
			scale = 2.0 / dt
		}
		for i := 0; i < q; i++ {
			gi := s.macIndex(mi, i)
			ieq := 0.0
			for j := 0; j < q; j++ {
				crv := m.Cr.At(i, j)
				if crv == 0 {
					continue
				}
				geq := scale * crv
				base.Add(gi, s.macIndex(mi, j), geq)
				ieq += geq * st.macV[mi][j]
			}
			if trap {
				ieq += st.macI[mi][i]
			}
			rhs[gi] += ieq
		}
	}
	return s.newtonSolve(base, rhs, st.v, t)
}

// commitStep folds an accepted solution into the integration state.
func (s *Simulator) commitStep(st *transState, vNew []float64, dt float64, trap bool) {
	for k, c := range s.caps {
		if c.c == 0 {
			continue
		}
		vNow := vAt(vNew, c.a) - vAt(vNew, c.b)
		if trap {
			st.capI[k] = (2*c.c/dt)*(vNow-st.capV[k]) - st.capI[k]
		} else {
			st.capI[k] = (c.c / dt) * (vNow - st.capV[k])
		}
		st.capV[k] = vNow
	}
	for mi, m := range s.macros {
		q := m.Cr.Rows()
		scale := 1.0 / dt
		if trap {
			scale = 2.0 / dt
		}
		for i := 0; i < q; i++ {
			sum := 0.0
			for j := 0; j < q; j++ {
				sum += scale * m.Cr.At(i, j) * (vNew[s.macIndex(mi, j)] - st.macV[mi][j])
			}
			if trap {
				sum -= st.macI[mi][i]
			}
			st.macI[mi][i] = sum
		}
		for k := 0; k < q; k++ {
			st.macV[mi][k] = vNew[s.macIndex(mi, k)]
		}
	}
	st.v = vNew
}

// newtonSolve iterates the linearized MNA system to convergence starting
// from guess v0. base/rhsBase hold all stamps except the nonlinear devices.
func (s *Simulator) newtonSolve(base *sparse.Triplet, rhsBase, v0 []float64, t float64) ([]float64, error) {
	v := make([]float64, s.dim)
	copy(v, v0)
	rhs := make([]float64, s.dim)
	for it := 0; it < s.opts.MaxNewton; it++ {
		tr := base.Clone()
		copy(rhs, rhsBase)
		s.stampMOSFETs(tr, rhs, v)
		lu, err := sparse.FactorLU(tr.Compile(), 0.1)
		s.statsLU()
		if err != nil {
			return nil, fmt.Errorf("%w: singular matrix", ErrNoConvergence)
		}
		vNew := lu.Solve(rhs)
		s.statsNewton()
		// Damped update: limit the per-iteration node-voltage change, the
		// standard robustness device for high-gain (deep logic) circuits.
		if s.opts.DVLimit > 0 {
			for i := 0; i < s.nNode; i++ {
				if d := vNew[i] - v[i]; d > s.opts.DVLimit {
					vNew[i] = v[i] + s.opts.DVLimit
				} else if d < -s.opts.DVLimit {
					vNew[i] = v[i] - s.opts.DVLimit
				}
			}
		}
		conv := true
		for i := 0; i < s.nNode; i++ {
			if math.IsNaN(vNew[i]) || math.Abs(vNew[i]) > s.opts.VMax {
				return nil, fmt.Errorf("%w: node voltage diverged (|v|=%.3g)", ErrNoConvergence, vNew[i])
			}
			if math.Abs(vNew[i]-v[i]) > s.opts.AbsTol+s.opts.RelTol*math.Abs(vNew[i]) {
				conv = false
			}
		}
		if conv && (it > 0 || len(s.mos) == 0) {
			return vNew, nil
		}
		v = vNew
	}
	return nil, ErrNoConvergence
}

// stampMOSFETs linearizes every transistor at voltages v and stamps the
// companion (Norton) models.
func (s *Simulator) stampMOSFETs(tr *sparse.Triplet, rhs []float64, v []float64) {
	at := func(i int) float64 {
		if i < 0 {
			return 0
		}
		return v[i]
	}
	for _, m := range s.mos {
		op := evalMOS(m, at(m.d), at(m.g), at(m.s), at(m.b))
		gm, gds, gmb := op.Gm, op.Gds, op.Gmb
		gss := -(gm + gds + gmb)
		// Current into drain: I = ID0 + gm·Δvg + gds·Δvd + gmb·Δvb + gss·Δvs.
		ieq := op.ID - gm*at(m.g) - gds*at(m.d) - gmb*at(m.b) - gss*at(m.s)
		stamp4 := func(row int, sign float64) {
			if row < 0 {
				return
			}
			add := func(col int, g float64) {
				if col >= 0 && g != 0 {
					tr.Add(row, col, sign*g)
				}
			}
			add(m.g, gm)
			add(m.d, gds)
			add(m.b, gmb)
			add(m.s, gss)
			rhs[row] -= sign * ieq
		}
		stamp4(m.d, +1) // current leaves the drain node into the device
		stamp4(m.s, -1) // and returns at the source
	}
}

func (s *Simulator) statsLU()     { s.stats.LUFactorizations++ }
func (s *Simulator) statsNewton() { s.stats.NewtonIterations++ }
