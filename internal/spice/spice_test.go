package spice

import (
	"errors"
	"math"
	"testing"

	"lcsim/internal/circuit"
	"lcsim/internal/device"
	"lcsim/internal/mat"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDCDivider(t *testing.T) {
	nl := circuit.New()
	nl.AddV("V1", "a", "0", circuit.DC(1))
	nl.AddR("R1", "a", "b", circuit.V(1000))
	nl.AddR("R2", "b", "0", circuit.V(1000))
	sim, err := NewSimulator(nl, Options{DT: 1e-9, TStop: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sim.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v[nl.Node("b")], 0.5, 1e-6) {
		t.Fatalf("divider = %v, want 0.5", v[nl.Node("b")])
	}
	if !almostEq(v[nl.Node("a")], 1.0, 1e-6) {
		t.Fatalf("source node = %v, want 1", v[nl.Node("a")])
	}
}

func TestRCStepResponse(t *testing.T) {
	// v(t) = 1 - exp(-t/RC), R = 1k, C = 1p -> tau = 1ns.
	nl := circuit.New()
	nl.AddV("V1", "in", "0", circuit.SatRamp{V0: 0, V1: 1, Start: 0, Slew: 1e-12})
	nl.AddR("R1", "in", "out", circuit.V(1000))
	nl.AddC("C1", "out", "0", circuit.V(1e-12))
	sim, err := NewSimulator(nl, Options{DT: 1e-11, TStop: 5e-9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	tau := 1e-9
	for i, tt := range res.T {
		if tt < 5e-11 {
			continue // skip the source ramp region
		}
		want := 1 - math.Exp(-tt/tau)
		if !almostEq(res.V["out"][i], want, 0.005) {
			t.Fatalf("RC response at t=%g: got %g want %g", tt, res.V["out"][i], want)
		}
	}
}

func TestRCEnergyConservationProperty(t *testing.T) {
	// A driven RC must never overshoot the source (passive network).
	nl := circuit.New()
	nl.AddV("V1", "in", "0", circuit.SatRamp{V0: 0, V1: 1, Start: 1e-10, Slew: 1e-9})
	prev := "in"
	for i := 0; i < 10; i++ {
		n := "n" + string(rune('0'+i))
		nl.AddR("R"+n, prev, n, circuit.V(100))
		nl.AddC("C"+n, n, "0", circuit.V(2e-13))
		prev = n
	}
	sim, err := NewSimulator(nl, Options{DT: 2e-11, TStop: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{prev})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.V[prev] {
		if v < -1e-6 || v > 1+1e-6 {
			t.Fatalf("passive RC output out of range at t=%g: %g", res.T[i], v)
		}
	}
	// Final value must approach 1.
	if got := res.V[prev][len(res.T)-1]; !almostEq(got, 1, 0.01) {
		t.Fatalf("final value = %g, want ~1", got)
	}
}

func buildInverter(drive float64) (*circuit.Netlist, error) {
	nl := circuit.New()
	nl.AddV("VDD", "vdd", "0", circuit.DC(device.Tech180.VDD))
	err := device.INV.Instantiate(nl, "u1", []string{"in"}, "out", device.BuildOpts{
		Tech: device.Tech180, Drive: drive,
	})
	return nl, err
}

func TestInverterDCTransfer(t *testing.T) {
	nl, err := buildInverter(1)
	if err != nil {
		t.Fatal(err)
	}
	nl.AddV("VIN", "in", "0", circuit.DC(0))
	sim, err := NewSimulator(nl, Options{DT: 1e-12, TStop: 1e-12, Models: device.Tech180})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sim.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if got := v[nl.Node("out")]; !almostEq(got, 1.8, 0.01) {
		t.Fatalf("inverter out with in=0: %g, want ~1.8", got)
	}
}

func TestInverterDCTransferHighInput(t *testing.T) {
	nl, err := buildInverter(1)
	if err != nil {
		t.Fatal(err)
	}
	nl.AddV("VIN", "in", "0", circuit.DC(1.8))
	sim, err := NewSimulator(nl, Options{DT: 1e-12, TStop: 1e-12, Models: device.Tech180})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sim.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if got := v[nl.Node("out")]; math.Abs(got) > 0.01 {
		t.Fatalf("inverter out with in=vdd: %g, want ~0", got)
	}
}

func TestInverterTransient(t *testing.T) {
	nl, err := buildInverter(2)
	if err != nil {
		t.Fatal(err)
	}
	nl.AddV("VIN", "in", "0", circuit.SatRamp{V0: 0, V1: 1.8, Start: 0.2e-9, Slew: 0.1e-9})
	nl.AddC("CL", "out", "0", circuit.V(20e-15))
	sim, err := NewSimulator(nl, Options{DT: 2e-12, TStop: 2e-9, Models: device.Tech180})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{"out", "in"})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := res.Waveform("out")
	if err != nil {
		t.Fatal(err)
	}
	// Output starts high, ends low.
	if wf.V[0] < 1.7 {
		t.Fatalf("initial out = %g, want ~vdd", wf.V[0])
	}
	if final := wf.V[len(wf.V)-1]; final > 0.05 {
		t.Fatalf("final out = %g, want ~0", final)
	}
	// 50% fall must happen after the input starts moving.
	cross := wf.CrossTime(0.9, -1)
	if math.IsNaN(cross) || cross < 0.2e-9 {
		t.Fatalf("fall crossing at %g", cross)
	}
}

func TestMacromodelEquivalentRC(t *testing.T) {
	// A 1-port macromodel Gr=[g], Cr=[c] must behave exactly like a
	// parallel RC to ground.
	build := func(useMac bool) []float64 {
		nl := circuit.New()
		nl.AddV("V1", "in", "0", circuit.SatRamp{V0: 0, V1: 1, Start: 1e-10, Slew: 1e-10})
		nl.AddR("R1", "in", "out", circuit.V(1000))
		if !useMac {
			nl.AddR("RL", "out", "0", circuit.V(2000))
			nl.AddC("CL", "out", "0", circuit.V(1e-12))
		}
		sim, err := NewSimulator(nl, Options{DT: 1e-11, TStop: 5e-9})
		if err != nil {
			t.Fatal(err)
		}
		if useMac {
			gr := mat.NewDenseData(1, 1, []float64{1.0 / 2000})
			cr := mat.NewDenseData(1, 1, []float64{1e-12})
			if err := sim.AddMacromodel(&Macromodel{Gr: gr, Cr: cr, Ports: []circuit.NodeID{nl.Node("out")}}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run([]string{"out"})
		if err != nil {
			t.Fatal(err)
		}
		return res.V["out"]
	}
	direct := build(false)
	mac := build(true)
	for i := range direct {
		if !almostEq(direct[i], mac[i], 1e-9) {
			t.Fatalf("macromodel differs from RC at sample %d: %g vs %g", i, mac[i], direct[i])
		}
	}
}

func TestMacromodelInternalStates(t *testing.T) {
	// 2-state macromodel with 1 port: series R into internal node with C:
	// port - [1/R, -1/R; -1/R, 1/R] - internal cap. Equivalent to R + C.
	g := 1.0 / 500
	gr := mat.NewDenseData(2, 2, []float64{g, -g, -g, g + 1e-9})
	cr := mat.NewDenseData(2, 2, []float64{0, 0, 0, 2e-12})
	nl := circuit.New()
	nl.AddV("V1", "in", "0", circuit.SatRamp{V0: 0, V1: 1, Start: 1e-10, Slew: 1e-10})
	nl.AddR("R1", "in", "out", circuit.V(1000))
	sim, err := NewSimulator(nl, Options{DT: 1e-11, TStop: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddMacromodel(&Macromodel{Gr: gr, Cr: cr, Ports: []circuit.NodeID{nl.Node("out")}}); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: R1 + series R to internal cap.
	nl2 := circuit.New()
	nl2.AddV("V1", "in", "0", circuit.SatRamp{V0: 0, V1: 1, Start: 1e-10, Slew: 1e-10})
	nl2.AddR("R1", "in", "out", circuit.V(1000))
	nl2.AddR("R2", "out", "x", circuit.V(500))
	nl2.AddC("C2", "x", "0", circuit.V(2e-12))
	sim2, err := NewSimulator(nl2, Options{DT: 1e-11, TStop: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim2.Run([]string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.T {
		if !almostEq(res.V["out"][i], res2.V["out"][i], 1e-3) {
			t.Fatalf("2-state macromodel mismatch at %d: %g vs %g", i, res.V["out"][i], res2.V["out"][i])
		}
	}
}

func TestUnstableMacromodelDiverges(t *testing.T) {
	// Negative conductance stronger than the source resistance: positive
	// pole, Newton must detect divergence — the paper's §5.1 phenomenon.
	nl := circuit.New()
	nl.AddV("V1", "in", "0", circuit.DC(1))
	nl.AddR("R1", "in", "out", circuit.V(1000)) // 1e-3 S
	sim, err := NewSimulator(nl, Options{DT: 1e-11, TStop: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	gr := mat.NewDenseData(1, 1, []float64{-2e-3})
	cr := mat.NewDenseData(1, 1, []float64{1e-12})
	if err := sim.AddMacromodel(&Macromodel{Gr: gr, Cr: cr, Ports: []circuit.NodeID{nl.Node("out")}}); err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run([]string{"out"})
	if err == nil {
		t.Fatal("expected divergence with an unstable macromodel")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("expected ErrNoConvergence, got %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	nl, err := buildInverter(1)
	if err != nil {
		t.Fatal(err)
	}
	nl.AddV("VIN", "in", "0", circuit.SatRamp{V0: 0, V1: 1.8, Start: 1e-10, Slew: 1e-10})
	sim, err := NewSimulator(nl, Options{DT: 1e-11, TStop: 1e-9, Models: device.Tech180})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steps != 100 {
		t.Fatalf("steps = %d, want 100", res.Stats.Steps)
	}
	// Each nonlinear step needs at least 2 Newton iterations.
	if res.Stats.NewtonIterations < 2*res.Stats.Steps {
		t.Fatalf("Newton iterations = %d, implausibly few", res.Stats.NewtonIterations)
	}
	if res.Stats.LUFactorizations < res.Stats.NewtonIterations {
		t.Fatal("each Newton iteration must refactor (SPICE cost model)")
	}
}

func TestOptionValidation(t *testing.T) {
	nl := circuit.New()
	nl.AddR("R1", "a", "0", circuit.V(1))
	if _, err := NewSimulator(nl, Options{}); err == nil {
		t.Fatal("zero DT/TStop must error")
	}
	nlm := circuit.New()
	nlm.AddMOSFET(circuit.MOSFET{Name: "M1", Model: "NMOS"}, "d", "g", "0", "0")
	if _, err := NewSimulator(nlm, Options{DT: 1, TStop: 1}); err == nil {
		t.Fatal("MOSFETs without models must error")
	}
}

func TestVariationalSampleAffectsElements(t *testing.T) {
	nl := circuit.New()
	nl.AddV("V1", "a", "0", circuit.DC(1))
	nl.AddR("R1", "a", "b", circuit.VarV(1000, "p", 1000.0))
	nl.AddR("R2", "b", "0", circuit.V(1000))
	sim, err := NewSimulator(nl, Options{DT: 1e-9, TStop: 1e-9, W: map[string]float64{"p": 1}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sim.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// R1 = 2000 at the sample -> divider = 1/3.
	if !almostEq(v[nl.Node("b")], 1.0/3, 1e-6) {
		t.Fatalf("sampled divider = %v, want 1/3", v[nl.Node("b")])
	}
}
