package spice

import (
	"fmt"

	"lcsim/internal/circuit"
	"lcsim/internal/device"
)

// HarnessDriver is one transistor-level driver of a StageSpec: a library
// cell whose inputs are driven by ideal voltage sources and whose output
// connects to a named node of the load netlist.
type HarnessDriver struct {
	Name  string // instance prefix (defaults to "d<index>")
	Cell  *device.Cell
	Drive float64
	Out   string // load-netlist node driven by the cell output
}

// StageSpec describes a transistor-level replica of one logic stage for
// golden per-sample evaluation: the paper's SPICE baseline, packaged so
// statistical drivers can rerun the comparison on any stage instead of
// re-implementing it inside each experiment.
//
// BuildLoad returns a fresh netlist holding the stage's linear load
// (interconnect plus receiver loading) with deterministic node names;
// it is invoked once per Eval because the expansion bakes the sample's
// DL/DVT deviations into every transistor instance and flattens element
// values at the W sample.
type StageSpec struct {
	Tech      *device.ModelSet
	Drivers   []HarnessDriver
	BuildLoad func() (*circuit.Netlist, error)
	Probe     string  // probed node (the stage output seen downstream)
	DT, TStop float64 // transient window (matching the TETA stage's)
}

// StageHarness evaluates a StageSpec with the Newton transient simulator,
// one full transistor-level run per sample.
type StageHarness struct {
	spec StageSpec
}

// NewStageHarness validates the spec.
func NewStageHarness(spec StageSpec) (*StageHarness, error) {
	if spec.Tech == nil {
		return nil, fmt.Errorf("spice: harness needs a device model set")
	}
	if len(spec.Drivers) == 0 {
		return nil, fmt.Errorf("spice: harness needs at least one driver")
	}
	for i, d := range spec.Drivers {
		if d.Cell == nil || d.Out == "" {
			return nil, fmt.Errorf("spice: harness driver %d needs a cell and an output node", i)
		}
	}
	if spec.BuildLoad == nil {
		return nil, fmt.Errorf("spice: harness needs a load builder")
	}
	if spec.Probe == "" {
		return nil, fmt.Errorf("spice: harness needs a probe node")
	}
	if spec.DT <= 0 || spec.TStop <= 0 {
		return nil, fmt.Errorf("spice: harness needs positive DT and TStop")
	}
	return &StageHarness{spec: spec}, nil
}

// Eval expands the stage at one statistical sample and runs the Newton
// transient: element values are evaluated at w, every transistor carries
// the dl/dvt deviations, and driver d's input pin k is an ideal source
// with waveform ins[d][k]. It returns the probed waveform plus the
// Newton cost counters (steps, iterations, LU factorizations).
func (h *StageHarness) Eval(w map[string]float64, dl, dvt float64, ins [][]circuit.Waveform) (*circuit.PWL, Stats, error) {
	spec := h.spec
	if len(ins) != len(spec.Drivers) {
		return nil, Stats{}, fmt.Errorf("spice: harness got %d input groups for %d drivers", len(ins), len(spec.Drivers))
	}
	nl, err := spec.BuildLoad()
	if err != nil {
		return nil, Stats{}, fmt.Errorf("spice: harness load: %w", err)
	}
	nl.AddV("VDDH", "vdd", "0", circuit.DC(spec.Tech.VDD))
	for d, drv := range spec.Drivers {
		if len(ins[d]) != drv.Cell.NIn {
			return nil, Stats{}, fmt.Errorf("spice: harness driver %d (%s) got %d inputs, want %d",
				d, drv.Cell.Name, len(ins[d]), drv.Cell.NIn)
		}
		name := drv.Name
		if name == "" {
			name = fmt.Sprintf("d%d", d)
		}
		inNodes := make([]string, len(ins[d]))
		for k, wfm := range ins[d] {
			node := fmt.Sprintf("hin_%s_%d", name, k)
			nl.AddV(fmt.Sprintf("VH_%s_%d", name, k), node, "0", wfm)
			inNodes[k] = node
		}
		if err := drv.Cell.Instantiate(nl, "hx_"+name, inNodes, drv.Out,
			device.BuildOpts{Tech: spec.Tech, Drive: drv.Drive, DL: dl, DVT: dvt}); err != nil {
			return nil, Stats{}, fmt.Errorf("spice: harness driver %d: %w", d, err)
		}
	}
	sim, err := NewSimulator(nl, Options{DT: spec.DT, TStop: spec.TStop, Models: spec.Tech, W: w})
	if err != nil {
		return nil, Stats{}, err
	}
	res, err := sim.Run([]string{spec.Probe})
	if err != nil {
		return nil, Stats{}, err
	}
	wf, err := res.Waveform(spec.Probe)
	if err != nil {
		return nil, Stats{}, err
	}
	return wf, res.Stats, nil
}
