package spice

import (
	"math"
	"testing"

	"lcsim/internal/circuit"
	"lcsim/internal/device"
)

func TestPulseTrainRC(t *testing.T) {
	// A periodic pulse through an RC must settle into a repeating pattern;
	// check period-to-period repeatability after a few cycles.
	nl := circuit.New()
	nl.AddV("V1", "in", "0", circuit.Pulse{
		V1: 0, V2: 1, Delay: 0, Rise: 50e-12, Fall: 50e-12, Width: 400e-12, Period: 1e-9,
	})
	nl.AddR("R1", "in", "out", circuit.V(500))
	nl.AddC("C1", "out", "0", circuit.V(100e-15))
	sim, err := NewSimulator(nl, Options{DT: 5e-12, TStop: 6e-9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := res.Waveform("out")
	if err != nil {
		t.Fatal(err)
	}
	// Compare cycle 5 against cycle 6 at matching phases.
	for phase := 0.0; phase < 1e-9; phase += 97e-12 {
		v5 := wf.At(4e-9 + phase)
		v6 := wf.At(5e-9 + phase)
		if math.Abs(v5-v6) > 1e-3 {
			t.Fatalf("pulse train not periodic at phase %g: %g vs %g", phase, v5, v6)
		}
	}
}

func TestSineSteadyStateAmplitude(t *testing.T) {
	// RC low-pass driven far below its corner passes the sine through.
	nl := circuit.New()
	nl.AddV("V1", "in", "0", circuit.Sine{Offset: 0.5, Amp: 0.25, Freq: 1e7})
	nl.AddR("R1", "in", "out", circuit.V(100))
	nl.AddC("C1", "out", "0", circuit.V(1e-15)) // corner ~1.6 THz·10⁻³...
	sim, err := NewSimulator(nl, Options{DT: 1e-9, TStop: 300e-9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, tt := range res.T {
		if tt < 100e-9 {
			continue
		}
		v := res.V["out"][i]
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.Abs(hi-0.75) > 0.01 || math.Abs(lo-0.25) > 0.01 {
		t.Fatalf("sine envelope [%g, %g], want [0.25, 0.75]", lo, hi)
	}
}

func TestCurrentSourceIntoCap(t *testing.T) {
	// Constant current into a grounded cap ramps linearly: v = I·t/C.
	nl := circuit.New()
	// Current flows from "0" through the source into "n": our convention
	// removes I from A and delivers it to B. The source switches on at
	// t=0+ so the DC point starts at 0 V.
	nl.AddI("I1", "0", "n", circuit.Pulse{V1: 0, V2: 1e-6, Rise: 1e-12, Width: 1})
	nl.AddC("C1", "n", "0", circuit.V(1e-12))
	nl.AddR("Rleak", "n", "0", circuit.V(1e9)) // keeps DC well-posed; τ ≫ window
	sim, err := NewSimulator(nl, Options{DT: 1e-11, TStop: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{"n"})
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range res.T {
		want := 1e-6 * tt / 1e-12
		if math.Abs(res.V["n"][i]-want) > 0.02*want+1e-6 {
			t.Fatalf("cap ramp at t=%g: %g, want %g", tt, res.V["n"][i], want)
		}
	}
}

func TestConductorElementInTransient(t *testing.T) {
	// A Conductor must behave identically to the equivalent Resistor.
	run := func(useG bool) []float64 {
		nl := circuit.New()
		nl.AddV("V1", "in", "0", circuit.SatRamp{V0: 0, V1: 1, Start: 1e-10, Slew: 1e-10})
		if useG {
			nl.AddG("G1", "in", "out", circuit.V(1e-3))
		} else {
			nl.AddR("R1", "in", "out", circuit.V(1000))
		}
		nl.AddC("C1", "out", "0", circuit.V(1e-12))
		sim, err := NewSimulator(nl, Options{DT: 1e-11, TStop: 5e-9})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run([]string{"out"})
		if err != nil {
			t.Fatal(err)
		}
		return res.V["out"]
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("conductor differs from resistor at %d: %g vs %g", i, b[i], a[i])
		}
	}
}

func TestNANDGateLogic(t *testing.T) {
	// DC truth table of the transistor-level NAND2.
	cases := []struct {
		a, b float64
		out  float64
	}{
		{0, 0, 1.8}, {0, 1.8, 1.8}, {1.8, 0, 1.8}, {1.8, 1.8, 0},
	}
	for _, tc := range cases {
		nl := circuit.New()
		nl.AddV("VDD", "vdd", "0", circuit.DC(1.8))
		nl.AddV("VA", "a", "0", circuit.DC(tc.a))
		nl.AddV("VB", "b", "0", circuit.DC(tc.b))
		if err := device.NAND2.Instantiate(nl, "u1", []string{"a", "b"}, "out", device.BuildOpts{Tech: device.Tech180}); err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(nl, Options{DT: 1e-12, TStop: 1e-12, Models: device.Tech180})
		if err != nil {
			t.Fatal(err)
		}
		v, err := sim.OperatingPoint()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v[nl.Node("out")]-tc.out) > 0.05 {
			t.Fatalf("NAND(%g,%g) = %g, want %g", tc.a, tc.b, v[nl.Node("out")], tc.out)
		}
	}
}

func TestAllCellsDCFunctional(t *testing.T) {
	// Every library cell must reach a valid rail-ish output for at least
	// one input assignment in DC — catches netlist topology errors.
	for _, name := range device.CellNames() {
		cell, err := device.LookupCell(name)
		if err != nil {
			t.Fatal(err)
		}
		nl := circuit.New()
		nl.AddV("VDD", "vdd", "0", circuit.DC(1.8))
		ins := make([]string, cell.NIn)
		for i := range ins {
			ins[i] = string(rune('a' + i))
			nl.AddV("V"+ins[i], ins[i], "0", circuit.DC(0))
		}
		if err := cell.Instantiate(nl, "u1", ins, "out", device.BuildOpts{Tech: device.Tech180}); err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(nl, Options{DT: 1e-12, TStop: 1e-12, Models: device.Tech180})
		if err != nil {
			t.Fatal(err)
		}
		v, err := sim.OperatingPoint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := v[nl.Node("out")]
		if out < -0.05 || out > 1.85 {
			t.Fatalf("%s output %g out of rails", name, out)
		}
		if out > 0.1 && out < 1.7 {
			t.Fatalf("%s output %g not at a rail with all-low inputs", name, out)
		}
	}
}

// cellTruth evaluates the intended boolean function of each library cell.
var cellTruth = map[string]func(in []bool) bool{
	"INV":   func(in []bool) bool { return !in[0] },
	"BUF":   func(in []bool) bool { return in[0] },
	"NAND2": func(in []bool) bool { return !(in[0] && in[1]) },
	"NAND3": func(in []bool) bool { return !(in[0] && in[1] && in[2]) },
	"NOR2":  func(in []bool) bool { return !(in[0] || in[1]) },
	"NOR3":  func(in []bool) bool { return !(in[0] || in[1] || in[2]) },
	"AOI21": func(in []bool) bool { return !((in[0] && in[1]) || in[2]) },
	"OAI21": func(in []bool) bool { return !((in[0] || in[1]) && in[2]) },
	"XOR2":  func(in []bool) bool { return in[0] != in[1] },
	"MUX2": func(in []bool) bool { // inputs: in0, in1, sel
		if in[2] {
			return in[1]
		}
		return in[0]
	},
	"AND2": func(in []bool) bool { return in[0] && in[1] },
	"OR2":  func(in []bool) bool { return in[0] || in[1] },
}

func TestCellTruthTables(t *testing.T) {
	// Exhaustive DC truth tables for every cell, including the derived
	// composites — the definitive check that the transistor netlists
	// implement their intended logic.
	names := append(device.CellNames(), "AND2", "OR2")
	for _, name := range names {
		fn, ok := cellTruth[name]
		if !ok {
			t.Fatalf("no truth function for %s", name)
		}
		cell, err := device.LookupCell(name)
		if err != nil {
			t.Fatal(err)
		}
		for mask := 0; mask < 1<<cell.NIn; mask++ {
			nl := circuit.New()
			nl.AddV("VDD", "vdd", "0", circuit.DC(1.8))
			ins := make([]string, cell.NIn)
			logic := make([]bool, cell.NIn)
			for i := range ins {
				ins[i] = string(rune('a' + i))
				logic[i] = mask&(1<<i) != 0
				val := 0.0
				if logic[i] {
					val = 1.8
				}
				nl.AddV("V"+ins[i], ins[i], "0", circuit.DC(val))
			}
			if err := cell.Instantiate(nl, "u1", ins, "out", device.BuildOpts{Tech: device.Tech180}); err != nil {
				t.Fatal(err)
			}
			sim, err := NewSimulator(nl, Options{DT: 1e-12, TStop: 1e-12, Models: device.Tech180})
			if err != nil {
				t.Fatal(err)
			}
			v, err := sim.OperatingPoint()
			if err != nil {
				t.Fatalf("%s mask %b: %v", name, mask, err)
			}
			got := v[nl.Node("out")] > 0.9
			if got != fn(logic) {
				t.Fatalf("%s(%v) = %v (%.3f V), want %v", name, logic, got, v[nl.Node("out")], fn(logic))
			}
		}
	}
}

func TestRingOscillator(t *testing.T) {
	// A 5-stage inverter ring must oscillate; the period is 2·N·t_pd.
	// Classic transistor-level sanity check for the whole Newton stack.
	nl := circuit.New()
	nl.AddV("VDD", "vdd", "0", circuit.DC(1.8))
	const n = 5
	for i := 0; i < n; i++ {
		in := "n" + string(rune('0'+i))
		out := "n" + string(rune('0'+(i+1)%n))
		if err := device.INV.Instantiate(nl, "u"+in, []string{in}, out, device.BuildOpts{Tech: device.Tech180, Drive: 1}); err != nil {
			t.Fatal(err)
		}
		nl.AddC("C"+in, out, "0", circuit.V(5e-15))
	}
	// Kick the ring out of its metastable DC point.
	nl.AddI("Ikick", "0", "n0", circuit.Pulse{V1: 0, V2: 2e-4, Delay: 1e-11, Rise: 1e-12, Fall: 1e-12, Width: 3e-11})
	sim, err := NewSimulator(nl, Options{DT: 2e-12, TStop: 6e-9, Models: device.Tech180})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{"n0"})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := res.Waveform("n0")
	if err != nil {
		t.Fatal(err)
	}
	// Count rising 0.9 V crossings after startup.
	var crossings []float64
	for i := 1; i < len(wf.T); i++ {
		if wf.T[i] < 1e-9 {
			continue
		}
		if wf.V[i-1] < 0.9 && wf.V[i] >= 0.9 {
			crossings = append(crossings, wf.T[i])
		}
	}
	if len(crossings) < 3 {
		t.Fatalf("ring did not oscillate: %d rising crossings", len(crossings))
	}
	// Period stability: successive periods within 10%.
	p1 := crossings[1] - crossings[0]
	p2 := crossings[2] - crossings[1]
	if math.Abs(p1-p2) > 0.1*p1 {
		t.Fatalf("period unstable: %g vs %g", p1, p2)
	}
	// Plausible range for 5 stages of drive-1 inverters with 5 fF loads.
	if p1 < 50e-12 || p1 > 3e-9 {
		t.Fatalf("period %g s implausible", p1)
	}
}
