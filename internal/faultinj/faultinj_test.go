package faultinj

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestScheduleDeterminism: two schedules with the same seed and rules
// make identical decisions; a different seed diverges somewhere.
func TestScheduleDeterminism(t *testing.T) {
	decide := func(seed int64) []string {
		s := NewSchedule(seed).Rule(OpWrite, KindTorn, 0.3).Rule(OpWrite, KindENOSPC, 0.1).Rule(OpRead, KindCorrupt, 0.2)
		out := make([]string, 0, 200)
		for i := 0; i < 100; i++ {
			out = append(out, s.Decide(OpWrite), s.Decide(OpRead))
		}
		return out
	}
	a, b, c := decide(7), decide(7), decide(8)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %q vs %q", i, a[i], b[i])
		}
		if a[i] != "" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatalf("schedule with p=0.3/0.1/0.2 injected nothing over 200 ops")
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical decision streams")
	}
}

// TestScheduleBudget: the fault budget caps total injections, then the
// schedule goes quiet.
func TestScheduleBudget(t *testing.T) {
	s := NewSchedule(1).Rule(OpWrite, KindTorn, 1.0).SetBudget(3)
	n := 0
	for i := 0; i < 50; i++ {
		if s.Decide(OpWrite) != "" {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("budget 3, injected %d", n)
	}
}

// TestRuleAt pins a fault to exactly one op of a class.
func TestRuleAt(t *testing.T) {
	s := NewSchedule(1).RuleAt(OpRename, KindErr, 2)
	var got []int
	for i := 0; i < 5; i++ {
		if s.Decide(OpRename) != "" {
			got = append(got, i)
		}
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("pinned rename.err@2 fired at %v", got)
	}
}

// TestParseSchedule round-trips the -fault flag syntax.
func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("seed=9,max=5,hang.ms=20,write.torn=1.0,rename.err@0=1")
	if err != nil {
		t.Fatal(err)
	}
	if s.seed != 9 || !s.limited || s.Hang() != 20*time.Millisecond {
		t.Fatalf("parsed schedule wrong: %+v", s)
	}
	if k := s.Decide(OpRename); k != KindErr {
		t.Fatalf("pinned rename rule did not fire: %q", k)
	}
	if k := s.Decide(OpWrite); k != KindTorn {
		t.Fatalf("write.torn=1.0 did not fire: %q", k)
	}
	if s2, err := ParseSchedule(""); err != nil || s2 != nil {
		t.Fatalf("empty spec should parse to nil, got %v, %v", s2, err)
	}
	for _, bad := range []string{"nonsense", "write=0.5", "write.torn=2", "seed=x"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted", bad)
		}
	}
}

// TestInjectFSTornWrite: a torn write through the temp-file recipe
// persists only a prefix while reporting success.
func TestInjectFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	fs := Inject(OS{}, NewSchedule(1).RuleAt(OpWrite, KindTorn, 0))
	f, err := fs.CreateTemp(dir, "x*")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("torn write must report success, got n=%d err=%v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after torn write must be silent: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(payload) {
		t.Fatalf("torn write persisted %d of %d bytes", len(got), len(payload))
	}
}

// TestInjectFSENOSPC: injected write failures carry both ErrInjected
// and the real syscall error.
func TestInjectFSENOSPC(t *testing.T) {
	fs := Inject(OS{}, NewSchedule(1).RuleAt(OpWrite, KindENOSPC, 0))
	err := fs.WriteFile(filepath.Join(t.TempDir(), "x"), []byte("data"), 0o644)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ErrInjected wrapping ENOSPC, got %v", err)
	}
}

// TestInjectFSReadCorrupt: a corrupted read differs from disk but the
// on-disk file is untouched.
func TestInjectFSReadCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := Inject(OS{}, NewSchedule(1).RuleAt(OpRead, KindCorrupt, 0))
	got, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == "hello world" {
		t.Fatalf("corrupt read returned clean bytes")
	}
	disk, _ := os.ReadFile(path)
	if string(disk) != "hello world" {
		t.Fatalf("corrupt read modified the file on disk")
	}
}

// TestNilSafety: nil schedules inject nothing and Inject(nil, nil)
// degrades to the plain OS.
func TestNilSafety(t *testing.T) {
	var s *Schedule
	if s.Decide(OpWrite) != "" || s.Hang() != 0 {
		t.Fatalf("nil schedule must be quiet")
	}
	fs := Inject(nil, nil)
	if _, ok := fs.(OS); !ok {
		t.Fatalf("Inject(nil, nil) = %T, want OS", fs)
	}
}
