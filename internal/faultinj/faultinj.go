// Package faultinj is the deterministic fault-injection layer behind
// the framework's chaos tests: an injectable filesystem shim (torn
// writes, ENOSPC, fsync errors, read corruption, rename failures) that
// the durable layers — internal/checkpoint, internal/modelcache, the
// lcsimd job queue — write through, plus a scripted engine fault hook
// (evaluation failures and hangs) installed via core.SetEngineWrapper.
//
// Every injected fault is driven by a Schedule: a seeded, per-op-class
// decision function. The k-th operation of a class fails (or not)
// according to a SplitMix64 hash of (seed, class.kind, k), so a
// single-threaded test replays bit-identically, and a concurrent chaos
// run draws from the same reproducible per-class streams regardless of
// goroutine interleaving. Explicit `class.kind@k` rules pin a fault to
// exactly the k-th op of a class for surgical tests. A schedule's
// fault budget (`max=N`) caps the total injected faults, so a
// retry-until-success loop always converges.
//
// The injected errors wrap ErrInjected (and, where a real syscall error
// is the honest analog, that too — ENOSPC for write failures), so
// victims classify them exactly like the genuine article while tests
// can still assert the fault was synthetic.
package faultinj

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected marks every synthetic fault this package produces.
// errors.Is(err, ErrInjected) distinguishes scripted chaos from real
// I/O trouble in test assertions; production classification must NOT
// special-case it (the whole point is that injected faults take the
// same recovery paths real ones would).
var ErrInjected = errors.New("faultinj: injected fault")

// File is the subset of *os.File the durable write recipe (temp file,
// write, fsync, close, rename) needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem seam the durable layers write through. The
// method set mirrors the os functions the checkpoint recipe uses;
// OS is the passthrough implementation, InjectFS the chaos one.
type FS interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (os.FileInfo, error)
}

// OS is the real filesystem: every method delegates to package os.
type OS struct{}

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

// Operation classes and fault kinds understood by Schedule rules. A
// rule names `class.kind`; Decide(class) returns the kind to inject
// ("" = none).
const (
	// OpWrite faults File.Write: KindTorn silently persists only a
	// prefix of the bytes (the classic torn write — detected later by
	// the CRC), KindENOSPC fails with a wrapped syscall.ENOSPC.
	OpWrite = "write"
	// OpSync faults File.Sync with a wrapped syscall.EIO.
	OpSync = "sync"
	// OpRename faults FS.Rename.
	OpRename = "rename"
	// OpRead faults FS.ReadFile: KindCorrupt flips one bit of the
	// returned copy, KindErr fails the read outright.
	OpRead = "read"
	// OpEngine faults scripted engine evaluations (see jobd's chaos
	// engine): KindFail returns an injected evaluation error, KindHang
	// sleeps for the schedule's hang duration before evaluating.
	OpEngine = "engine"

	KindTorn    = "torn"
	KindENOSPC  = "enospc"
	KindErr     = "err"
	KindCorrupt = "corrupt"
	KindFail    = "fail"
	KindHang    = "hang"
)

// rule is one `class.kind` entry: a probability, or a pinned op index.
type rule struct {
	kind string
	prob float64
	at   int // -1 = probabilistic; >= 0 = exactly the at-th op of the class
}

// Schedule is a seeded fault plan. The zero value injects nothing; a
// nil *Schedule is safe everywhere and injects nothing.
type Schedule struct {
	seed int64
	hang time.Duration

	// budget is the remaining fault allowance; negative means unlimited.
	budget   atomic.Int64
	limited  bool
	rules    map[string][]rule // class → rules, kind-sorted for determinism
	mu       sync.Mutex
	counters map[string]*atomic.Int64
}

// NewSchedule builds an empty schedule (no rules, unlimited budget)
// with the given seed; add rules with Rule / RuleAt.
func NewSchedule(seed int64) *Schedule {
	return &Schedule{seed: seed, hang: 50 * time.Millisecond, rules: map[string][]rule{}, counters: map[string]*atomic.Int64{}}
}

// Rule adds a probabilistic rule: each op of class independently
// injects kind with probability p (decided by the seeded per-class
// stream).
func (s *Schedule) Rule(class, kind string, p float64) *Schedule {
	s.rules[class] = append(s.rules[class], rule{kind: kind, prob: p, at: -1})
	s.sortRules(class)
	return s
}

// RuleAt pins kind to exactly the k-th (0-based) op of class.
func (s *Schedule) RuleAt(class, kind string, k int) *Schedule {
	s.rules[class] = append(s.rules[class], rule{kind: kind, at: k})
	s.sortRules(class)
	return s
}

func (s *Schedule) sortRules(class string) {
	rs := s.rules[class]
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].kind < rs[j].kind })
}

// SetBudget caps the total number of injected faults across all
// classes; once spent, the schedule goes quiet (so a supervised
// retry loop always converges). Negative = unlimited.
func (s *Schedule) SetBudget(n int) *Schedule {
	s.limited = n >= 0
	s.budget.Store(int64(n))
	return s
}

// SetHang sets the engine-hang duration (default 50ms).
func (s *Schedule) SetHang(d time.Duration) *Schedule {
	s.hang = d
	return s
}

// Hang returns the engine-hang duration.
func (s *Schedule) Hang() time.Duration {
	if s == nil {
		return 0
	}
	return s.hang
}

// counter returns the op counter of a class.
func (s *Schedule) counter(class string) *atomic.Int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[class]
	if !ok {
		c = new(atomic.Int64)
		s.counters[class] = c
	}
	return c
}

// Decide consumes one op of the class and returns the fault kind to
// inject, or "" for a clean op. Nil-safe.
func (s *Schedule) Decide(class string) string {
	if s == nil {
		return ""
	}
	rs := s.rules[class]
	if len(rs) == 0 {
		return ""
	}
	k := s.counter(class).Add(1) - 1
	for _, r := range rs {
		hit := false
		if r.at >= 0 {
			hit = int64(r.at) == k
		} else if r.prob > 0 {
			hit = unit(s.seed, class+"."+r.kind, k) < r.prob
		}
		if !hit {
			continue
		}
		if s.limited && s.budget.Add(-1) < 0 {
			return "" // budget spent: chaos over
		}
		return r.kind
	}
	return ""
}

// unit maps (seed, label, k) to a uniform value in [0, 1) via a
// SplitMix64-style mix over an FNV-folded label — a pure function, so
// every per-class decision stream replays identically for a seed.
func unit(seed int64, label string, k int64) float64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	z := uint64(seed) ^ h ^ (uint64(k) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// ParseSchedule reads the `-fault` flag syntax: comma-separated
// `key=value` entries.
//
//	seed=42          — the decision-stream seed (default 1)
//	max=50           — total fault budget (default unlimited)
//	hang.ms=100      — engine-hang duration in milliseconds
//	write.torn=0.05  — probabilistic rule: class.kind=probability
//	rename.err@3=1   — pinned rule: class.kind@k (value ignored)
//
// An empty string returns nil (no injection).
func ParseSchedule(spec string) (*Schedule, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	s := NewSchedule(1)
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		key, val, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("faultinj: bad schedule entry %q (want key=value)", ent)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinj: bad seed %q", val)
			}
			s.seed = n
		case "max":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("faultinj: bad max %q", val)
			}
			s.SetBudget(n)
		case "hang.ms":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("faultinj: bad hang.ms %q", val)
			}
			s.SetHang(time.Duration(n) * time.Millisecond)
		default:
			class, kind, ok := strings.Cut(key, ".")
			if !ok {
				return nil, fmt.Errorf("faultinj: unknown schedule key %q", key)
			}
			if kind2, at, pinned := strings.Cut(kind, "@"); pinned {
				k, err := strconv.Atoi(at)
				if err != nil {
					return nil, fmt.Errorf("faultinj: bad pinned op index in %q", key)
				}
				s.RuleAt(class, kind2, k)
				continue
			}
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("faultinj: bad probability %q for %q", val, key)
			}
			s.Rule(class, kind, p)
		}
	}
	return s, nil
}

// InjectFS wraps an FS with schedule-driven faults. Reads can corrupt
// or fail; writes can tear (persist a prefix, report success) or hit
// ENOSPC; fsync and rename can fail. Metadata ops (Stat, MkdirAll,
// Remove) pass through — the recovery paths under test are the data
// ones.
type InjectFS struct {
	FS FS
	S  *Schedule
}

// Inject wraps base (OS{} when nil) with the schedule. A nil schedule
// returns base unwrapped.
func Inject(base FS, s *Schedule) FS {
	if base == nil {
		base = OS{}
	}
	if s == nil {
		return base
	}
	return InjectFS{FS: base, S: s}
}

func (f InjectFS) ReadFile(name string) ([]byte, error) {
	data, err := f.FS.ReadFile(name)
	if err != nil {
		return data, err
	}
	switch f.S.Decide(OpRead) {
	case KindCorrupt:
		if len(data) > 0 {
			data = append([]byte(nil), data...)
			data[len(data)/2] ^= 0x01
		}
	case KindErr:
		return nil, fmt.Errorf("%w: read %s", ErrInjected, name)
	}
	return data, nil
}

func (f InjectFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	switch f.S.Decide(OpWrite) {
	case KindTorn:
		// Persist only a prefix and report success: the torn write a
		// crash between write and fsync leaves behind.
		return f.FS.WriteFile(name, data[:len(data)/2], perm)
	case KindENOSPC:
		return fmt.Errorf("%w: write %s: %w", ErrInjected, name, syscall.ENOSPC)
	}
	return f.FS.WriteFile(name, data, perm)
}

func (f InjectFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.FS.CreateTemp(dir, pattern)
	if err != nil {
		return file, err
	}
	return &injectFile{File: file, s: f.S}, nil
}

func (f InjectFS) Rename(oldpath, newpath string) error {
	if f.S.Decide(OpRename) == KindErr {
		return fmt.Errorf("%w: rename %s -> %s", ErrInjected, oldpath, newpath)
	}
	return f.FS.Rename(oldpath, newpath)
}

func (f InjectFS) Remove(name string) error                     { return f.FS.Remove(name) }
func (f InjectFS) MkdirAll(path string, perm os.FileMode) error { return f.FS.MkdirAll(path, perm) }
func (f InjectFS) Stat(name string) (os.FileInfo, error)        { return f.FS.Stat(name) }

// injectFile wraps one temp file. A torn write truncates the payload
// and then swallows every later write and the sync — the file looks
// successfully written to its producer, but holds a prefix.
type injectFile struct {
	File
	s    *Schedule
	torn bool
}

func (f *injectFile) Write(p []byte) (int, error) {
	if f.torn {
		return len(p), nil
	}
	switch f.s.Decide(OpWrite) {
	case KindTorn:
		f.torn = true
		if _, err := f.File.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		return len(p), nil
	case KindENOSPC:
		return 0, fmt.Errorf("%w: write %s: %w", ErrInjected, f.Name(), syscall.ENOSPC)
	}
	return f.File.Write(p)
}

func (f *injectFile) Sync() error {
	if f.torn {
		return nil
	}
	if f.s.Decide(OpSync) == KindErr {
		return fmt.Errorf("%w: fsync %s: %w", ErrInjected, f.Name(), syscall.EIO)
	}
	return f.File.Sync()
}
