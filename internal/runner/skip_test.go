package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestMapSkipOrderedDelivery: skipped and delivered samples must arrive
// interleaved in strict index order, with skips going to OnSkip and
// values to the sink.
func TestMapSkipOrderedDelivery(t *testing.T) {
	const n = 200
	for _, workers := range []int{0, 1, 8} {
		var events []int // sample index, negative bit marks a skip
		var skipErrs []error
		m := &Metrics{}
		err := Map(context.Background(), n,
			Options{
				Workers: workers, Metrics: m,
				OnSkip: func(i int, err error) {
					events = append(events, -(i + 1))
					skipErrs = append(skipErrs, err)
				},
			},
			func(_ context.Context, i int) (int, error) {
				if i%3 == 0 {
					return 0, SkipSample(fmt.Errorf("sample %d is bad", i))
				}
				return i, nil
			},
			func(i int, v int) {
				if v != i {
					t.Errorf("sink got %d at index %d", v, i)
				}
				events = append(events, i+1)
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(events) != n {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(events), n)
		}
		for k, e := range events {
			i := e
			if i < 0 {
				i = -i
			}
			if i-1 != k {
				t.Fatalf("workers=%d: event %d carries index %d — delivery is out of order", workers, k, i-1)
			}
			wantSkip := k%3 == 0
			if (e < 0) != wantSkip {
				t.Fatalf("workers=%d: index %d skip=%v, want %v", workers, k, e < 0, wantSkip)
			}
		}
		for _, err := range skipErrs {
			if !errors.Is(err, ErrSkip) {
				t.Fatalf("workers=%d: OnSkip error %v does not match ErrSkip", workers, err)
			}
		}
		if s := m.Snapshot(); s.Skipped != (n+2)/3 || s.Samples != n {
			t.Fatalf("workers=%d: skipped=%d samples=%d", workers, s.Skipped, s.Samples)
		}
	}
}

// TestMapSkipDoesNotAbort: a skip error must not count as a failure —
// the run completes and returns nil even when every sample skips.
func TestMapSkipDoesNotAbort(t *testing.T) {
	skipped := 0
	err := Map(context.Background(), 50,
		Options{Workers: 4, OnSkip: func(int, error) { skipped++ }},
		func(_ context.Context, i int) (int, error) {
			return 0, SkipSample(nil)
		},
		func(int, int) { t.Error("sink must not fire for skipped samples") })
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 50 {
		t.Fatalf("skipped = %d, want 50", skipped)
	}
}

// TestSkipSampleWrapping: SkipSample must expose both the ErrSkip marker
// and the cause chain.
func TestSkipSampleWrapping(t *testing.T) {
	cause := errors.New("underlying cause")
	err := SkipSample(fmt.Errorf("wrapped: %w", cause))
	if !errors.Is(err, ErrSkip) {
		t.Fatal("skip error must match ErrSkip")
	}
	if !errors.Is(err, cause) {
		t.Fatal("skip error must expose its cause chain")
	}
	if !errors.Is(SkipSample(nil), ErrSkip) {
		t.Fatal("nil-cause skip must still match ErrSkip")
	}
}

// TestWithRecovery: the hook fires only for genuine failures — not for
// successes, and not for already-skipped samples — and its result
// replaces the failed evaluation.
func TestWithRecovery(t *testing.T) {
	var mu sync.Mutex
	recovered := map[int]bool{}
	fn := func(_ context.Context, i int, _ *struct{}) (int, error) {
		switch {
		case i%4 == 1:
			return 0, fmt.Errorf("transient failure at %d", i)
		case i%4 == 2:
			return 0, SkipSample(fmt.Errorf("already skipped at %d", i))
		}
		return i * 10, nil
	}
	rec := func(_ context.Context, i int, _ *struct{}, cause error) (int, error) {
		mu.Lock()
		recovered[i] = true
		mu.Unlock()
		if i%8 == 5 {
			return 0, SkipSample(cause) // recovery gave up
		}
		return i*10 + 1, nil // recovered value
	}
	var got []int
	var skippedIdx []int
	err := MapWorker(context.Background(), 32,
		Options{
			Workers: 4,
			OnSkip:  func(i int, _ error) { skippedIdx = append(skippedIdx, i) },
		},
		func() *struct{} { return &struct{}{} },
		WithRecovery(fn, rec),
		func(i, v int) { got = append(got, v) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		switch {
		case i%4 == 1: // failed primary: recovery must have run
			if !recovered[i] {
				t.Errorf("index %d: recovery hook did not fire", i)
			}
		default:
			if recovered[i] {
				t.Errorf("index %d: recovery hook fired for a non-failure", i)
			}
		}
	}
	var wantSkipped []int
	var wantVals []int
	for i := 0; i < 32; i++ {
		switch {
		case i%8 == 5: // recovery gave up
			wantSkipped = append(wantSkipped, i)
		case i%4 == 2: // fn skipped directly
			wantSkipped = append(wantSkipped, i)
		case i%4 == 1: // recovered
			wantVals = append(wantVals, i*10+1)
		default:
			wantVals = append(wantVals, i*10)
		}
	}
	if !reflect.DeepEqual(skippedIdx, wantSkipped) {
		t.Fatalf("skipped %v, want %v", skippedIdx, wantSkipped)
	}
	if !reflect.DeepEqual(got, wantVals) {
		t.Fatalf("delivered %v, want %v", got, wantVals)
	}
	// nil recovery is the identity composition.
	plain := func(ctx context.Context, i int, s *struct{}) (int, error) { return i, nil }
	if gotFn := WithRecovery(plain, nil); reflect.ValueOf(gotFn).Pointer() != reflect.ValueOf(plain).Pointer() {
		t.Fatal("WithRecovery(fn, nil) must return fn unchanged")
	}
}

// TestMapSkipSetWorkerInvariance: the set of skipped indices is a pure
// function of the index, so it must be bit-identical at any worker count.
func TestMapSkipSetWorkerInvariance(t *testing.T) {
	run := func(workers int) []int {
		var skipped []int
		err := Map(context.Background(), 300,
			Options{Workers: workers, OnSkip: func(i int, _ error) { skipped = append(skipped, i) }},
			func(_ context.Context, i int) (int, error) {
				if (i*2654435761)%7 == 0 {
					return 0, SkipSample(fmt.Errorf("bad %d", i))
				}
				return i, nil
			}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return skipped
	}
	ref := run(1)
	if len(ref) == 0 {
		t.Fatal("test needs a nonempty skip-set")
	}
	for _, w := range []int{0, 2, 8} {
		if got := run(w); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: skip-set %v != reference %v", w, got, ref)
		}
	}
}

// TestMetricsFailureCounters: per-class counters must be race-safe and
// sorted in FailureClasses.
func TestMetricsFailureCounters(t *testing.T) {
	m := &Metrics{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				m.AddFailure("sc-diverged")
				if k%2 == 0 {
					m.AddFailure("singular-gr")
				}
			}
		}()
	}
	wg.Wait()
	if got := m.FailureClasses(); !reflect.DeepEqual(got, []string{"sc-diverged", "singular-gr"}) {
		t.Fatalf("classes %v", got)
	}
	s := m.Snapshot()
	if s.Failures["sc-diverged"] != 800 || s.Failures["singular-gr"] != 400 {
		t.Fatalf("failure counts %v", s.Failures)
	}
}
