// Package runner is the parallel evaluation runtime behind the
// framework's Monte-Carlo loops: a chunked worker pool with
// context.Context cancellation, deterministic lowest-index-wins error
// reporting, in-order result delivery (so streaming statistics are
// bit-identical at any worker count), per-index RNG stream derivation,
// and a lightweight metrics/progress layer.
//
// The paper's headline efficiency claim (§4.3.1) is that each
// statistical sample costs only a library evaluation plus a Successive-
// Chords transient; this package is what lets the framework spend those
// cheap evaluations on every core without giving up reproducibility.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSkip is the sentinel recognized by Map/MapWorker for per-sample
// degradation: an evaluation function that returns an error satisfying
// errors.Is(err, ErrSkip) marks its sample as *skipped* rather than
// failed — the run continues, the sample is excluded from sink delivery,
// and Options.OnSkip observes the exclusion. Build such errors with
// SkipSample so the underlying cause stays inspectable.
var ErrSkip = errors.New("runner: sample skipped")

// SkipSample wraps cause into a skip marker: Map/MapWorker exclude the
// sample from delivery instead of failing the run, and report cause to
// Options.OnSkip. errors.Is(SkipSample(c), ErrSkip) holds, and the full
// cause chain stays reachable through errors.As/Is.
func SkipSample(cause error) error { return &skipError{cause} }

type skipError struct{ cause error }

func (e *skipError) Error() string {
	if e.cause == nil {
		return ErrSkip.Error()
	}
	return "runner: sample skipped: " + e.cause.Error()
}

func (e *skipError) Is(target error) bool { return target == ErrSkip }
func (e *skipError) Unwrap() error        { return e.cause }

// WithRecovery wraps fn with a per-index recovery hook: when fn fails at
// index i, rec runs once — on the same worker goroutine, with the same
// per-worker state — and its outcome replaces the sample's. A rec that
// returns (v, nil) repairs the sample; a SkipSample error excludes it; any
// other error fails the run with the usual lowest-index-wins semantics.
// Recovery must be a pure function of (i, cause) — state is a scratch
// cache, not a memory — so results remain bit-identical at any worker
// count. Errors already marked with ErrSkip bypass rec (fn has decided).
func WithRecovery[S, T any](
	fn func(ctx context.Context, i int, state S) (T, error),
	rec func(ctx context.Context, i int, state S, cause error) (T, error),
) func(ctx context.Context, i int, state S) (T, error) {
	if rec == nil {
		return fn
	}
	return func(ctx context.Context, i int, state S) (T, error) {
		v, err := fn(ctx, i, state)
		if err == nil || errors.Is(err, ErrSkip) {
			return v, err
		}
		return rec(ctx, i, state, err)
	}
}

// Options configures one Map run.
type Options struct {
	// Workers selects the evaluation parallelism: 0 runs serially on the
	// calling goroutine, -1 (or any negative value) uses GOMAXPROCS, and
	// a positive value runs exactly that many workers.
	Workers int
	// BatchSize is how many consecutive indices a worker claims — and
	// evaluates, and delivers to the collector as one message — per
	// dispatch (default: a size that yields ~8 batches per worker, capped
	// at 64). Larger batches amortize channel traffic; smaller batches
	// balance load. Delivery order, skip-sets and everything the sink
	// accumulates are bit-identical at any batch size: batching changes
	// only how results travel to the single ordered-delivery goroutine,
	// never the order they leave it.
	BatchSize int
	// Metrics, when non-nil, receives a Samples increment per completed
	// evaluation (evaluation code adds its own counters).
	Metrics *Metrics
	// Progress, when non-nil, is called from the collector goroutine
	// every ProgressEvery completed samples and once at the end.
	Progress func(done, total int)
	// ProgressEvery is the sample interval between Progress calls
	// (default max(1, n/100)).
	ProgressEvery int
	// OnSkip, when non-nil, is called for every sample whose evaluation
	// returned a SkipSample error — from the collector goroutine, in
	// strict index order, interleaved with sink deliveries — so failure
	// reports built in OnSkip are bit-identical at any worker count. The
	// error passed is the full skip error (unwrap for the cause).
	OnSkip func(i int, err error)
	// Start is the first index to evaluate: the run covers [Start, n).
	// A checkpoint-resumed run sets Start to the snapshot's prefix cut and
	// re-evaluates only the remainder; because every per-index contract
	// (RNG streams, skip decisions, ordered delivery) is a pure function
	// of the index, the combined run is bit-identical to an uninterrupted
	// one. Negative values are treated as 0.
	Start int
	// OnCheckpoint, when non-nil, is called from the same single goroutine
	// that runs sink and OnSkip — the ordered-delivery drain — with the
	// current prefix cut: every index < next has been delivered (to sink)
	// or skipped (to OnSkip), and no index >= next has. Anything the sink
	// accumulated is therefore a prefix-consistent snapshot at that
	// instant, safe to serialize without locking. Calls follow the
	// CheckpointEvery / CheckpointInterval cadence, whichever fires first.
	OnCheckpoint func(next int)
	// CheckpointEvery is the number of ordered deliveries between
	// OnCheckpoint calls (default 64).
	CheckpointEvery int
	// CheckpointInterval is the wall-clock bound between OnCheckpoint
	// calls: when it elapses, the next ordered delivery triggers a flush
	// even if CheckpointEvery has not been reached (default 30s).
	CheckpointInterval time.Duration
}

// ResolveWorkers maps the Workers convention (0 = serial, negative =
// GOMAXPROCS, positive = exact) to an actual worker count ≥ 1.
func ResolveWorkers(w int) int {
	if w < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w == 0 {
		return 1
	}
	return w
}

func (o Options) batchSize(n, workers int) int {
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	c := n / (workers * 8)
	if c < 1 {
		c = 1
	}
	if c > 64 {
		c = 64
	}
	return c
}

func (o Options) progressEvery(n int) int {
	if o.ProgressEvery > 0 {
		return o.ProgressEvery
	}
	e := n / 100
	if e < 1 {
		e = 1
	}
	return e
}

func (o Options) start() int {
	if o.Start < 0 {
		return 0
	}
	return o.Start
}

func (o Options) checkpointEvery() int {
	if o.CheckpointEvery > 0 {
		return o.CheckpointEvery
	}
	return 64
}

func (o Options) checkpointInterval() time.Duration {
	if o.CheckpointInterval > 0 {
		return o.CheckpointInterval
	}
	return 30 * time.Second
}

// ckptCadence tracks the every-K-deliveries / every-T-seconds checkpoint
// cadence for one drain goroutine (no locking: it is only touched from
// the ordered-delivery goroutine).
type ckptCadence struct {
	fn       func(next int)
	every    int
	interval time.Duration
	since    int       // ordered deliveries since the last flush
	last     time.Time // wall time of the last flush
}

func newCkptCadence(o Options) *ckptCadence {
	if o.OnCheckpoint == nil {
		return nil
	}
	return &ckptCadence{
		fn:       o.OnCheckpoint,
		every:    o.checkpointEvery(),
		interval: o.checkpointInterval(),
		last:     time.Now(),
	}
}

// delivered notes one ordered delivery (value or skip) and flushes the
// hook when either cadence bound is reached. next is the prefix cut
// after the delivery.
func (c *ckptCadence) delivered(next int) {
	if c == nil {
		return
	}
	c.since++
	if c.since < c.every && time.Since(c.last) < c.interval {
		return
	}
	c.since = 0
	c.last = time.Now()
	c.fn(next)
}

// result carries one evaluation outcome to the collector.
type result[T any] struct {
	i   int
	v   T
	err error
}

// Map evaluates fn(ctx, i) for every i in [0, n), with opts.Workers
// parallelism, and delivers the values to sink *in strict index order*
// from a single goroutine — streaming accumulators fed by sink therefore
// produce bit-identical results at any worker count. sink may be nil.
//
// Error semantics are deterministic: the reported error is the one with
// the lowest sample index. On the first error, no sample at or beyond
// that index is started (outstanding work is abandoned); samples below
// it run to completion so a lower-index error can still win. The error
// is wrapped as "sample %d: ...".
//
// Degradation: an fn error wrapping ErrSkip (build it with SkipSample)
// does NOT fail the run — the sample is excluded from sink delivery,
// counted in Metrics, and reported to Options.OnSkip in strict index
// order. Because skipping is a per-index decision made by fn, the
// skip-set — and everything the sink accumulates — is identical at any
// worker count.
//
// Cancellation: when ctx is canceled (or its deadline passes), workers
// stop between samples and Map returns ctx.Err() wrapped with the
// sample index reached — errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) hold as appropriate.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error), sink func(i int, v T)) error {
	return MapWorker(ctx, n, opts,
		func() struct{} { return struct{}{} },
		func(ctx context.Context, i int, _ struct{}) (T, error) { return fn(ctx, i) },
		sink)
}

// MapWorker is Map with per-worker state: newState runs once on each
// worker goroutine (once total on the serial path) and its value is
// passed to every fn call that worker makes. Evaluation loops use it to
// reuse expensive scratch buffers — convolver coefficient memos, solver
// workspaces — without any locking, because a state value is only ever
// touched by its owning worker. Determinism is unchanged: results still
// arrive at sink in strict index order, and a sample's value must not
// depend on its worker's state history (states are caches, not
// accumulators).
func MapWorker[S, T any](ctx context.Context, n int, opts Options, newState func() S, fn func(ctx context.Context, i int, state S) (T, error), sink func(i int, v T)) error {
	start := opts.start()
	if n <= 0 || start >= n {
		return nil
	}
	workers := ResolveWorkers(opts.Workers)
	if workers > n-start {
		workers = n - start
	}
	if workers == 1 {
		return mapSerial(ctx, n, opts, newState, fn, sink)
	}
	batch := opts.batchSize(n-start, workers)
	every := opts.progressEvery(n)

	var (
		next   atomic.Int64 // next unclaimed index
		minErr atomic.Int64 // lowest index that has errored (n = none)
		wg     sync.WaitGroup
	)
	next.Store(int64(start))
	minErr.Store(int64(n))
	// Each channel message is one worker's whole batch: K evaluations
	// amortize a single send, so channel traffic no longer scales with the
	// sample count. The collector unpacks batches item by item into the
	// same ordered drain, so delivery stays bit-identical at any (workers,
	// batch) combination.
	results := make(chan []result[T], workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := newState()
			for {
				lo := int(next.Add(int64(batch))) - batch
				if lo >= n {
					return
				}
				end := lo + batch
				if end > n {
					end = n
				}
				out := make([]result[T], 0, end-lo)
				t0 := time.Now()
				for i := lo; i < end; i++ {
					if ctx.Err() != nil {
						break
					}
					// Nothing at or beyond the first error matters; work
					// below it still runs so the lowest index wins.
					if int64(i) >= minErr.Load() {
						continue
					}
					v, err := fn(ctx, i, state)
					if err != nil && !errors.Is(err, ErrSkip) {
						storeMin(&minErr, int64(i))
					}
					out = append(out, result[T]{i, v, err})
				}
				opts.Metrics.addBusyNs(time.Since(t0).Nanoseconds())
				if len(out) > 0 {
					t1 := time.Now()
					results <- out
					opts.Metrics.addSendWaitNs(time.Since(t1).Nanoseconds())
				}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: reorder results to strict index order for sink/OnSkip,
	// track the lowest-index error and progress. Skipped samples (errors
	// wrapping ErrSkip) flow through the same ordered drain as values, so
	// OnSkip observes exclusions in strict index order too. The checkpoint
	// cadence also lives here: OnCheckpoint fires between ordered
	// deliveries, so every flush sees a prefix-consistent cut.
	ckpt := newCkptCadence(opts)
	pending := make(map[int]result[T])
	nextOut := start
	done := 0
	firstErrIdx := n
	var firstErr error
	for rs := range results {
		for _, r := range rs {
			done++
			opts.Metrics.addSamples(1)
			if r.err != nil && !errors.Is(r.err, ErrSkip) {
				if r.i < firstErrIdx {
					firstErrIdx = r.i
					firstErr = r.err
				}
			} else {
				pending[r.i] = r
				for {
					p, ok := pending[nextOut]
					if !ok {
						break
					}
					delete(pending, nextOut)
					if p.err != nil {
						opts.Metrics.addSkipped(1)
						if opts.OnSkip != nil {
							opts.OnSkip(p.i, p.err)
						}
					} else if sink != nil {
						sink(p.i, p.v)
					}
					nextOut++
					ckpt.delivered(nextOut)
				}
			}
			if opts.Progress != nil && done%every == 0 {
				opts.Progress(start+done, n)
			}
		}
	}
	if opts.Progress != nil {
		opts.Progress(start+done, n)
	}
	if firstErr != nil {
		return fmt.Errorf("sample %d: %w", firstErrIdx, firstErr)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("runner: canceled at sample %d: %w", nextOut, err)
	}
	return nil
}

// mapSerial is the workers == 1 path: no goroutines, same semantics,
// one state value for the whole run.
func mapSerial[S, T any](ctx context.Context, n int, opts Options, newState func() S, fn func(ctx context.Context, i int, state S) (T, error), sink func(i int, v T)) error {
	every := opts.progressEvery(n)
	ckpt := newCkptCadence(opts)
	t0 := time.Now()
	defer func() { opts.Metrics.addBusyNs(time.Since(t0).Nanoseconds()) }()
	state := newState()
	for i := opts.start(); i < n; i++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("runner: canceled at sample %d: %w", i, err)
		}
		v, err := fn(ctx, i, state)
		if err != nil {
			if !errors.Is(err, ErrSkip) {
				return fmt.Errorf("sample %d: %w", i, err)
			}
			opts.Metrics.addSamples(1)
			opts.Metrics.addSkipped(1)
			if opts.OnSkip != nil {
				opts.OnSkip(i, err)
			}
			ckpt.delivered(i + 1)
			if opts.Progress != nil && ((i+1)%every == 0 || i == n-1) {
				opts.Progress(i+1, n)
			}
			continue
		}
		opts.Metrics.addSamples(1)
		if sink != nil {
			sink(i, v)
		}
		ckpt.delivered(i + 1)
		if opts.Progress != nil && ((i+1)%every == 0 || i == n-1) {
			opts.Progress(i+1, n)
		}
	}
	return nil
}

// storeMin atomically lowers v to x if x is smaller.
func storeMin(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x >= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// IndexSeed derives a per-sample RNG seed from a master seed via a
// SplitMix64 mix. Seeding a generator with IndexSeed(master, i) gives
// every sample its own independent, reproducible stream regardless of
// which worker (or how many workers) evaluates it.
func IndexSeed(master int64, i int) int64 {
	z := uint64(master) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
