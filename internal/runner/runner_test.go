package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolveWorkers(t *testing.T) {
	if ResolveWorkers(0) != 1 {
		t.Fatal("0 must mean serial (one worker)")
	}
	if ResolveWorkers(3) != 3 {
		t.Fatal("positive counts are taken literally")
	}
	if ResolveWorkers(-1) < 1 {
		t.Fatal("-1 must resolve to GOMAXPROCS")
	}
}

func TestMapOrderedSink(t *testing.T) {
	const n = 500
	for _, workers := range []int{0, 4, 16} {
		var got []int
		err := Map(context.Background(), n, Options{Workers: workers},
			func(_ context.Context, i int) (int, error) { return i * i, nil },
			func(i, v int) { got = append(got, i) })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: sink saw %d of %d", workers, len(got), n)
		}
		for i, g := range got {
			if g != i {
				t.Fatalf("workers=%d: sink out of order at %d: %d", workers, i, g)
			}
		}
	}
}

func TestMapWorkerCountInvariance(t *testing.T) {
	// The sink-visible value stream must be identical at any worker
	// count, including order — this is what makes streaming statistics
	// reproducible.
	run := func(workers int) []float64 {
		out := make([]float64, 0, 200)
		err := Map(context.Background(), 200, Options{Workers: workers},
			func(_ context.Context, i int) (float64, error) {
				return float64(IndexSeed(7, i)%1000) / 3.0, nil
			},
			func(_ int, v float64) { out = append(out, v) })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{4, 16} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d differs at %d", w, i)
			}
		}
	}
}

func TestMapErrorLowestIndexWins(t *testing.T) {
	// Two failing indices: the lower one must always be reported, at any
	// worker count, because samples below a known error keep running.
	for _, workers := range []int{0, 8} {
		for trial := 0; trial < 5; trial++ {
			err := Map(context.Background(), 300, Options{Workers: workers, BatchSize: 1},
				func(_ context.Context, i int) (int, error) {
					if i == 211 || i == 37 {
						return 0, fmt.Errorf("boom at %d", i)
					}
					return i, nil
				}, nil)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.HasPrefix(err.Error(), "sample 37:") {
				t.Fatalf("workers=%d: wrong error: %v", workers, err)
			}
		}
	}
}

func TestMapErrorStopsEarly(t *testing.T) {
	const n = 10000
	var evaluated atomic.Int64
	boom := errors.New("boom")
	err := Map(context.Background(), n, Options{Workers: 4},
		func(_ context.Context, i int) (int, error) {
			evaluated.Add(1)
			if i == 50 {
				return 0, boom
			}
			return i, nil
		}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("expected wrapped boom, got %v", err)
	}
	if ev := evaluated.Load(); ev >= n/2 {
		t.Fatalf("error did not stop outstanding work: %d of %d samples ran", ev, n)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var doneSamples atomic.Int64
	err := Map(ctx, 10000, Options{Workers: 4},
		func(ctx context.Context, i int) (int, error) {
			if doneSamples.Add(1) == 100 {
				cancel()
			}
			time.Sleep(20 * time.Microsecond)
			return i, nil
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), "sample") {
		t.Fatalf("cancellation must report the sample index reached: %v", err)
	}
	if n := doneSamples.Load(); n >= 10000 {
		t.Fatal("cancellation did not abort the run")
	}
}

func TestMapDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := Map(ctx, 1<<30, Options{Workers: 2},
		func(_ context.Context, i int) (int, error) {
			time.Sleep(100 * time.Microsecond)
			return i, nil
		}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestMapSerialCancellationIndex(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := Map(ctx, 100, Options{Workers: 0},
		func(_ context.Context, i int) (int, error) {
			if i == 9 {
				cancel()
			}
			return i, nil
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), "sample 10") {
		t.Fatalf("serial cancel must report index reached: %v", err)
	}
}

func TestMetricsAndProgress(t *testing.T) {
	var m Metrics
	var calls atomic.Int64
	var lastDone atomic.Int64
	err := Map(context.Background(), 1000, Options{
		Workers: 4, Metrics: &m, ProgressEvery: 100,
		Progress: func(done, total int) {
			calls.Add(1)
			lastDone.Store(int64(done))
			if total != 1000 {
				t.Errorf("total = %d", total)
			}
		},
	}, func(_ context.Context, i int) (int, error) {
		m.AddSC(2)
		return i, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Samples != 1000 {
		t.Fatalf("samples = %d", s.Samples)
	}
	if s.SCIterations != 2000 {
		t.Fatalf("SC iterations = %d", s.SCIterations)
	}
	if calls.Load() == 0 || lastDone.Load() != 1000 {
		t.Fatalf("progress: %d calls, last done %d", calls.Load(), lastDone.Load())
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.AddSC(1)
	m.AddSolves(1)
	m.AddStageEvals(1)
	m.addSamples(1)
	m.addSkipped(1)
	m.AddDegraded(1)
	m.AddFailure("sc-diverged")
	if got := m.FailureClasses(); got != nil {
		t.Fatalf("nil metrics must record no failure classes, got %v", got)
	}
	s := m.Snapshot()
	if s.Samples != 0 || s.SCIterations != 0 || s.LinearSolves != 0 ||
		s.StageEvals != 0 || s.Skipped != 0 || s.Degraded != 0 || s.Failures != nil {
		t.Fatalf("nil metrics must read as zero, got %+v", s)
	}
}

func TestIndexSeedStreamsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		s := IndexSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at %d", i)
		}
		seen[s] = true
	}
	if IndexSeed(1, 0) == IndexSeed(2, 0) {
		t.Fatal("different masters must give different streams")
	}
}

func TestMapZeroAndNegativeN(t *testing.T) {
	if err := Map(context.Background(), 0, Options{}, func(_ context.Context, i int) (int, error) { return i, nil }, nil); err != nil {
		t.Fatal(err)
	}
	if err := Map(context.Background(), -5, Options{}, func(_ context.Context, i int) (int, error) { return i, nil }, nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkMapSpeedup demonstrates the worker-pool wall-clock win on a
// CPU-bound per-sample cost (compare serial vs parallel ns/op).
func BenchmarkMapSpeedup(b *testing.B) {
	work := func(_ context.Context, i int) (float64, error) {
		acc := float64(i)
		for k := 0; k < 20000; k++ {
			acc += float64(k%7) * 1e-9
		}
		return acc, nil
	}
	for _, v := range []struct {
		name    string
		workers int
	}{{"serial", 0}, {"parallel", -1}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := Map(context.Background(), 1000, Options{Workers: v.workers}, work, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMapBatch isolates the dispatch overhead batching removes: a
// near-free per-sample kernel makes the per-result channel round-trip
// the dominant cost, so ns/op tracks dispatch overhead almost directly.
// Compare batch=1 (one send/receive per sample) against larger batches.
func BenchmarkMapBatch(b *testing.B) {
	work := func(_ context.Context, i int) (float64, error) { return float64(i) * 1.5, nil }
	for _, batch := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := Map(context.Background(), 10000,
					Options{Workers: 4, BatchSize: batch}, work, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestMapWorkerStateIsolation(t *testing.T) {
	// Each worker goroutine gets exactly one state value, created on that
	// goroutine, and no state is ever touched by two workers: a non-atomic
	// counter in the state must account for every sample with no lost
	// updates, and the number of states created must not exceed the worker
	// count.
	type counter struct{ n int }
	const n, workers = 400, 7
	var created atomic.Int64
	var states [workers * 2]*counter // slots claimed per created state
	newState := func() *counter {
		c := &counter{}
		states[created.Add(1)-1] = c
		return c
	}
	err := MapWorker(context.Background(), n, Options{Workers: workers},
		newState,
		func(_ context.Context, i int, c *counter) (int, error) {
			c.n++ // safe only if the state is worker-private
			return i, nil
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	got := int(created.Load())
	if got > workers {
		t.Fatalf("created %d states for %d workers", got, workers)
	}
	total := 0
	for _, c := range states[:got] {
		total += c.n
	}
	if total != n {
		t.Fatalf("states account for %d of %d samples (state shared across workers?)", total, n)
	}
}

func TestMapWorkerSerialSingleState(t *testing.T) {
	// The workers<=1 path must create exactly one state and thread it
	// through every call in order.
	creates := 0
	var seen []int
	err := MapWorker(context.Background(), 5, Options{},
		func() *[]int { creates++; return &seen },
		func(_ context.Context, i int, s *[]int) (struct{}, error) {
			*s = append(*s, i)
			return struct{}{}, nil
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if creates != 1 {
		t.Fatalf("serial path created %d states, want 1", creates)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial state saw indices %v", seen)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("serial state saw %d calls, want 5", len(seen))
	}
}

// TestMapStartOffset checks Options.Start resumes a run mid-range: only
// [Start, n) is evaluated, delivery stays in strict index order, and the
// value stream matches the tail of a full run at any worker count.
func TestMapStartOffset(t *testing.T) {
	const n, start = 120, 47
	full := make([]int, 0, n)
	err := Map(context.Background(), n, Options{},
		func(_ context.Context, i int) (int, error) { return i * 3, nil },
		func(_ int, v int) { full = append(full, v) })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 5} {
		var evaluated atomic.Int64
		got := make([]int, 0, n-start)
		idx := make([]int, 0, n-start)
		err := Map(context.Background(), n, Options{Workers: workers, Start: start},
			func(_ context.Context, i int) (int, error) {
				evaluated.Add(1)
				if i < start {
					t.Errorf("workers=%d: evaluated index %d below Start=%d", workers, i, start)
				}
				return i * 3, nil
			},
			func(i, v int) { got = append(got, v); idx = append(idx, i) })
		if err != nil {
			t.Fatal(err)
		}
		if int(evaluated.Load()) != n-start {
			t.Fatalf("workers=%d: evaluated %d samples, want %d", workers, evaluated.Load(), n-start)
		}
		if fmt.Sprint(got) != fmt.Sprint(full[start:]) {
			t.Fatalf("workers=%d: resumed value stream differs from the tail of a full run", workers)
		}
		for k, i := range idx {
			if i != start+k {
				t.Fatalf("workers=%d: delivery order broken at %d: index %d", workers, k, i)
			}
		}
	}
	// Start at or past n is a completed run: nothing to do, no error.
	if err := Map(context.Background(), n, Options{Start: n},
		func(_ context.Context, i int) (int, error) {
			t.Error("no sample should be evaluated")
			return 0, nil
		}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMapOnCheckpointPrefixCut checks the OnCheckpoint hook: every call
// reports a cut no larger than the number of in-order deliveries the sink
// has seen, cuts are monotonic, and the every-K cadence fires throughout
// the run at any worker count.
func TestMapOnCheckpointPrefixCut(t *testing.T) {
	const n = 300
	for _, workers := range []int{0, 4} {
		delivered := 0
		var cuts []int
		err := Map(context.Background(), n,
			Options{
				Workers:         workers,
				CheckpointEvery: 10,
				OnCheckpoint: func(next int) {
					// Runs on the same goroutine as the sink: next must equal
					// the deliveries seen so far (a prefix-consistent cut).
					if next != delivered {
						t.Errorf("workers=%d: cut %d but %d deliveries", workers, next, delivered)
					}
					cuts = append(cuts, next)
				},
			},
			func(_ context.Context, i int) (int, error) { return i, nil },
			func(int, int) { delivered++ })
		if err != nil {
			t.Fatal(err)
		}
		if len(cuts) < n/10 {
			t.Fatalf("workers=%d: only %d checkpoint flushes for %d samples at every=10", workers, len(cuts), n)
		}
		for k := 1; k < len(cuts); k++ {
			if cuts[k] < cuts[k-1] {
				t.Fatalf("workers=%d: cuts not monotonic: %v", workers, cuts)
			}
		}
	}
}

// TestMapOnCheckpointCountsSkips checks skipped samples advance the
// prefix cut too — a checkpoint taken after a skip must not re-evaluate
// the skipped index on resume.
func TestMapOnCheckpointCountsSkips(t *testing.T) {
	const n = 40
	last := 0
	err := Map(context.Background(), n,
		Options{CheckpointEvery: 1, OnCheckpoint: func(next int) { last = next }},
		func(_ context.Context, i int) (int, error) {
			if i%3 == 0 {
				return 0, SkipSample(errors.New("boom"))
			}
			return i, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if last != n {
		t.Fatalf("final cut %d, want %d (skips must advance the cut)", last, n)
	}
}

// TestMetricsMerge checks restoring a checkpointed snapshot folds every
// counter, including the per-class failure map.
func TestMetricsMerge(t *testing.T) {
	var a Metrics
	a.AddSC(5)
	a.AddTimeout(2)
	a.AddResumed(3)
	a.AddFailure("timeout")
	a.AddFailure("timeout")
	a.AddFailure("sc-diverged")
	var b Metrics
	b.AddSC(7)
	b.AddFailure("timeout")
	b.Merge(a.Snapshot())
	s := b.Snapshot()
	if s.SCIterations != 12 || s.TimedOut != 2 || s.Resumed != 3 {
		t.Fatalf("merged counters wrong: %+v", s)
	}
	if s.Failures["timeout"] != 3 || s.Failures["sc-diverged"] != 1 {
		t.Fatalf("merged failure classes wrong: %v", s.Failures)
	}
	// Nil receivers stay safe.
	var nilM *Metrics
	nilM.Merge(s)
	nilM.AddTimeout(1)
	nilM.AddResumed(1)
}
