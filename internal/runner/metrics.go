package runner

import "sync/atomic"

// Metrics is a set of atomic cost counters shared by the evaluation
// layers: the runner counts completed samples, the core/teta layers add
// Successive-Chords iterations, linear (triangular) solves and stage
// evaluations. All methods are safe on a nil receiver, so call sites
// can pass counters through unconditionally.
type Metrics struct {
	samples    atomic.Int64
	scIters    atomic.Int64
	solves     atomic.Int64
	stageEvals atomic.Int64
}

// Snapshot is a consistent-enough copy of the counters for reporting.
type Snapshot struct {
	Samples      int64 // completed sample evaluations
	SCIterations int64 // Successive-Chords iterations
	LinearSolves int64 // triangular solves during timestepping
	StageEvals   int64 // stage transient evaluations
}

func (m *Metrics) addSamples(n int) {
	if m != nil {
		m.samples.Add(int64(n))
	}
}

// AddSC adds Successive-Chords iterations.
func (m *Metrics) AddSC(n int) {
	if m != nil {
		m.scIters.Add(int64(n))
	}
}

// AddSolves adds linear-solve counts.
func (m *Metrics) AddSolves(n int) {
	if m != nil {
		m.solves.Add(int64(n))
	}
}

// AddStageEvals adds stage transient evaluations.
func (m *Metrics) AddStageEvals(n int) {
	if m != nil {
		m.stageEvals.Add(int64(n))
	}
}

// Snapshot reads all counters. A nil receiver reads as zero.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	return Snapshot{
		Samples:      m.samples.Load(),
		SCIterations: m.scIters.Load(),
		LinearSolves: m.solves.Load(),
		StageEvals:   m.stageEvals.Load(),
	}
}
