package runner

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is a set of atomic cost counters shared by the evaluation
// layers: the runner counts completed and skipped samples, the core/teta
// layers add Successive-Chords iterations, linear (triangular) solves,
// stage evaluations, and — for fault-tolerant statistical runs — per-class
// failure counts and degraded-recovery counts. All methods are safe on a
// nil receiver, so call sites can pass counters through unconditionally.
type Metrics struct {
	samples    atomic.Int64
	scIters    atomic.Int64
	solves     atomic.Int64
	stageEvals atomic.Int64
	skipped    atomic.Int64
	degraded   atomic.Int64
	timedOut   atomic.Int64
	resumed    atomic.Int64
	busyNs     atomic.Int64
	sendWaitNs atomic.Int64
	mcHits     atomic.Int64
	mcMisses   atomic.Int64
	mcCorrupt  atomic.Int64
	ckptBak    atomic.Int64
	ckptRetry  atomic.Int64
	failures   sync.Map // failure class (string) → *atomic.Int64
}

// Snapshot is a consistent-enough copy of the counters for reporting.
type Snapshot struct {
	Samples      int64 // completed sample evaluations (including skipped)
	SCIterations int64 // Successive-Chords iterations
	LinearSolves int64 // triangular solves during timestepping
	StageEvals   int64 // stage transient evaluations
	Skipped      int64 // samples excluded from the aggregate by a skip policy
	Degraded     int64 // samples recovered through a degradation retry
	TimedOut     int64 // evaluations abandoned at a SampleTimeout deadline
	Resumed      int64 // samples restored from a checkpoint, not evaluated
	// BusyNs is wall-clock nanoseconds workers spent inside evaluation
	// batches (summed across workers). BusyNs/(workers·elapsed) is the
	// run's worker utilization.
	BusyNs int64
	// SendWaitNs is wall-clock nanoseconds workers spent blocked handing
	// finished batches to the ordered-delivery collector — the channel
	// contention a flat scaling curve is made of.
	SendWaitNs int64
	// ModelCacheHits/Misses/Corrupt report the cross-run macromodel
	// store: characterizations served from disk, characterizations that
	// had to run (and were then stored), and on-disk entries rejected by
	// the integrity check (deleted and recomputed). A fully warm run has
	// zero misses.
	ModelCacheHits    int64
	ModelCacheMisses  int64
	ModelCacheCorrupt int64
	// CheckpointBakLoads counts resumes served from the .bak rotation
	// because the primary snapshot was missing or corrupt;
	// CheckpointRenameRetries counts atomic-install renames that needed
	// a retry. Both were previously silent recoveries — non-zero values
	// mean the journal survived real filesystem trouble.
	CheckpointBakLoads      int64
	CheckpointRenameRetries int64
	// Failures maps failure class name → occurrence count (nil when no
	// failure was ever recorded).
	Failures map[string]int64
}

func (m *Metrics) addSamples(n int) {
	if m != nil {
		m.samples.Add(int64(n))
	}
}

func (m *Metrics) addSkipped(n int) {
	if m != nil {
		m.skipped.Add(int64(n))
	}
}

func (m *Metrics) addBusyNs(ns int64) {
	if m != nil {
		m.busyNs.Add(ns)
	}
}

func (m *Metrics) addSendWaitNs(ns int64) {
	if m != nil {
		m.sendWaitNs.Add(ns)
	}
}

// AddSC adds Successive-Chords iterations.
func (m *Metrics) AddSC(n int) {
	if m != nil {
		m.scIters.Add(int64(n))
	}
}

// AddSolves adds linear-solve counts.
func (m *Metrics) AddSolves(n int) {
	if m != nil {
		m.solves.Add(int64(n))
	}
}

// AddStageEvals adds stage transient evaluations.
func (m *Metrics) AddStageEvals(n int) {
	if m != nil {
		m.stageEvals.Add(int64(n))
	}
}

// AddDegraded counts samples that failed their primary evaluation but
// were recovered by a degradation retry (e.g. exact per-sample
// extraction).
func (m *Metrics) AddDegraded(n int) {
	if m != nil {
		m.degraded.Add(int64(n))
	}
}

// AddTimeout counts evaluations abandoned at a per-sample watchdog
// deadline (whether the sample was later recovered by a ladder rung or
// skipped).
func (m *Metrics) AddTimeout(n int) {
	if m != nil {
		m.timedOut.Add(int64(n))
	}
}

// AddResumed counts samples whose results were restored from a durable
// checkpoint instead of being evaluated by this process.
func (m *Metrics) AddResumed(n int) {
	if m != nil {
		m.resumed.Add(int64(n))
	}
}

// AddModelCacheHit counts characterizations served from the cross-run
// macromodel store instead of being recomputed.
func (m *Metrics) AddModelCacheHit(n int) {
	if m != nil {
		m.mcHits.Add(int64(n))
	}
}

// AddModelCacheMiss counts characterizations the store did not hold:
// the extraction ran in this process and the result was written back.
func (m *Metrics) AddModelCacheMiss(n int) {
	if m != nil {
		m.mcMisses.Add(int64(n))
	}
}

// AddModelCacheCorrupt counts on-disk store entries that failed their
// integrity check and were deleted and recomputed.
func (m *Metrics) AddModelCacheCorrupt(n int) {
	if m != nil {
		m.mcCorrupt.Add(int64(n))
	}
}

// AddCheckpointBakLoad counts snapshot loads that fell back to the
// .bak rotation because the primary generation was missing or failed
// its integrity check.
func (m *Metrics) AddCheckpointBakLoad(n int) {
	if m != nil {
		m.ckptBak.Add(int64(n))
	}
}

// AddCheckpointRenameRetry counts atomic-install renames of a snapshot
// that failed transiently and were retried.
func (m *Metrics) AddCheckpointRenameRetry(n int) {
	if m != nil {
		m.ckptRetry.Add(int64(n))
	}
}

// AddFailure counts one per-sample failure of the named class. Classes
// are free-form strings (the core layer passes its FailureClass names);
// each class gets its own atomic counter, created on first use.
func (m *Metrics) AddFailure(class string) {
	if m == nil {
		return
	}
	c, ok := m.failures.Load(class)
	if !ok {
		c, _ = m.failures.LoadOrStore(class, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// FailureClasses returns the recorded failure class names, sorted.
func (m *Metrics) FailureClasses() []string {
	if m == nil {
		return nil
	}
	var out []string
	m.failures.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

// Snapshot reads all counters. A nil receiver reads as zero.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Samples:      m.samples.Load(),
		SCIterations: m.scIters.Load(),
		LinearSolves: m.solves.Load(),
		StageEvals:   m.stageEvals.Load(),
		Skipped:      m.skipped.Load(),
		Degraded:     m.degraded.Load(),
		TimedOut:     m.timedOut.Load(),
		Resumed:      m.resumed.Load(),
		BusyNs:       m.busyNs.Load(),
		SendWaitNs:   m.sendWaitNs.Load(),

		ModelCacheHits:    m.mcHits.Load(),
		ModelCacheMisses:  m.mcMisses.Load(),
		ModelCacheCorrupt: m.mcCorrupt.Load(),

		CheckpointBakLoads:      m.ckptBak.Load(),
		CheckpointRenameRetries: m.ckptRetry.Load(),
	}
	m.failures.Range(func(k, v any) bool {
		if s.Failures == nil {
			s.Failures = map[string]int64{}
		}
		s.Failures[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return s
}

// Merge folds a previously captured snapshot into the counters — how a
// checkpoint-resumed run restores the cost counters its completed prefix
// accumulated in the killed process. Safe on a nil receiver.
func (m *Metrics) Merge(s Snapshot) {
	if m == nil {
		return
	}
	m.samples.Add(s.Samples)
	m.scIters.Add(s.SCIterations)
	m.solves.Add(s.LinearSolves)
	m.stageEvals.Add(s.StageEvals)
	m.skipped.Add(s.Skipped)
	m.degraded.Add(s.Degraded)
	m.timedOut.Add(s.TimedOut)
	m.resumed.Add(s.Resumed)
	m.busyNs.Add(s.BusyNs)
	m.sendWaitNs.Add(s.SendWaitNs)
	m.mcHits.Add(s.ModelCacheHits)
	m.mcMisses.Add(s.ModelCacheMisses)
	m.mcCorrupt.Add(s.ModelCacheCorrupt)
	m.ckptBak.Add(s.CheckpointBakLoads)
	m.ckptRetry.Add(s.CheckpointRenameRetries)
	for class, n := range s.Failures {
		c, ok := m.failures.Load(class)
		if !ok {
			c, _ = m.failures.LoadOrStore(class, new(atomic.Int64))
		}
		c.(*atomic.Int64).Add(n)
	}
}
