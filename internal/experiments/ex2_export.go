package experiments

import (
	"lcsim/internal/circuit"
	"lcsim/internal/teta"
)

// BuildExample2Stage builds the Example-2 (Figure 4) stage at one
// wirelength for external harnesses — the root-level benchmarks and the
// cmd/lcsim bench subcommand. exact pins the stage to per-sample
// extraction; otherwise samples evaluate through the characterize-once
// variational macromodel. The stage's DC Newton is primed at the nominal
// operating point.
func BuildExample2Stage(o Ex2Options, lengthUm float64, exact bool) (*teta.Stage, error) {
	o.setDefaults()
	return ex2Stage(o, lengthUm, exact)
}

// Example2Samples draws the Example-2 LHS sample plan (o.Samples specs
// over the five wire parameters, uniform in [-1, 1]).
func Example2Samples(o Ex2Options) []teta.RunSpec {
	o.setDefaults()
	return ex2SampleSpecs(o)
}

// Example2Inputs returns the Figure-4 stimuli.
func Example2Inputs(o Ex2Options) [][]circuit.Waveform {
	o.setDefaults()
	return ex2Inputs(o)
}

// Example2Delay measures the victim far-end 50% falling delay of one
// Example-2 result.
func Example2Delay(o Ex2Options, res *teta.Result) (float64, error) {
	o.setDefaults()
	return ex2Delay(o, res)
}
