package experiments

import (
	"math"
	"strings"
	"testing"

	"lcsim/internal/circuit"
	"lcsim/internal/core"
	"lcsim/internal/iscas"
	"lcsim/internal/spice"
	"lcsim/internal/teta"
)

func TestExample1LoadMatchesTable2(t *testing.T) {
	nl := BuildExample1Load()
	st := nl.Stats()
	// 6 conductors (2 lines × 3 segments), 1 shunt resistor, 9 capacitors
	// (6 ground + 3 coupling).
	if st.Conductors != 6 || st.Resistors != 1 || st.Capacitors != 9 {
		t.Fatalf("element counts: %+v", st)
	}
	if len(nl.Ports()) != 1 {
		t.Fatal("Example 1 is a one-port load")
	}
	// Endpoint check of Table 2 at p = 0 and p = 0.1.
	w0 := map[string]float64{}
	w1 := map[string]float64{Ex1Param: 0.1}
	g1 := nl.Conductors[0] // first segment of line a
	if !almostEq(1/g1.G.Eval(w0), 10, 1e-9) || !almostEq(1/g1.G.Eval(w1), 15, 1e-9) {
		t.Fatalf("R1 endpoints wrong: %g %g", 1/g1.G.Eval(w0), 1/g1.G.Eval(w1))
	}
	c1 := nl.Capacitors[0]
	if !almostEq(c1.C.Eval(w1), 3e-12, 1e-24) {
		t.Fatalf("C1 at p=0.1: %g", c1.C.Eval(w1))
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTable3ReproducesInstabilityOnset(t *testing.T) {
	res, err := RunTable3(4, []float64{0, 0.02, 0.05, 0.06, 0.08, 0.09, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	byP := map[float64]Table3Row{}
	for _, r := range res.Rows {
		byP[r.P] = r
	}
	// Stable at small p.
	if byP[0].NumUnstable != 0 || byP[0.02].NumUnstable != 0 {
		t.Fatal("model must be stable near nominal")
	}
	// Unstable from p = 0.05 on (the paper's Table 3 range).
	for _, p := range []float64{0.05, 0.06, 0.08, 0.09, 0.1} {
		if byP[p].NumUnstable == 0 {
			t.Fatalf("expected instability at p=%g", p)
		}
	}
	// The unstable pole magnitude decreases with p (Table 3's trend).
	if !(byP[0.05].UnstablePole > byP[0.06].UnstablePole &&
		byP[0.06].UnstablePole > byP[0.08].UnstablePole &&
		byP[0.08].UnstablePole > byP[0.1].UnstablePole) {
		t.Fatalf("pole magnitudes not decreasing: %+v", res.Rows)
	}
	// Same order of magnitude as the paper at p=0.1 (3.75e12 there).
	if byP[0.1].UnstablePole < 1e11 || byP[0.1].UnstablePole > 1e14 {
		t.Fatalf("pole at p=0.1 = %g, out of expected range", byP[0.1].UnstablePole)
	}
	if out := RenderTable3(res); !strings.Contains(out, "stable") {
		t.Fatal("render must mark stable entries")
	}
}

func TestFigure3Agreement(t *testing.T) {
	res, err := RunFigure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(res.Series))
	}
	// The paper's claim: nominal, extreme and reconstructed macromodel
	// agree well at p=0.1.
	if res.MaxErrV > 0.1 {
		t.Fatalf("reconstruction error %g V too large", res.MaxErrV)
	}
	if res.Cross50ErrS > 200e-12 { // ~2% of the multi-ns transition
		t.Fatalf("50%% crossing error %g s too large", res.Cross50ErrS)
	}
	// Nominal and extreme differ visibly (the parameter matters).
	nom, ext := res.Series[0], res.Series[1]
	maxDiff := 0.0
	for i := range nom.T {
		if d := math.Abs(nom.V[i] - ext.V[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 0.1 {
		t.Fatal("nominal and extreme waveforms should differ visibly")
	}
}

func TestDivergenceReproducesSection51(t *testing.T) {
	rows, err := RunDivergence([]float64{0, 0.05, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ROMUnstable || rows[0].SPICEOutcome != "converged" {
		t.Fatalf("p=0 must be benign: %+v", rows[0])
	}
	// The raw variational macromodel is unstable at p >= 0.05 and the
	// Newton simulator diverges at the large-p end, while the framework
	// succeeds everywhere (the §5.1 headline claim).
	if !rows[1].ROMUnstable || !rows[2].ROMUnstable {
		t.Fatal("ROM must be unstable for p >= 0.05")
	}
	if rows[2].SPICEOutcome != "diverged" {
		t.Fatalf("expected SPICE divergence at p=0.1: %+v", rows[2])
	}
	for _, r := range rows {
		if r.Framework != "ok" {
			t.Fatalf("framework must handle p=%g: %+v", r.P, r)
		}
	}
}

func TestFigure5SpeedupGrowsWithElements(t *testing.T) {
	o := Ex2Options{Samples: 6}
	rows, err := RunFigure5(o, []float64{25, 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	for _, r := range rows {
		if r.Speedup < 5 {
			t.Fatalf("speedup %g at %g um implausibly low", r.Speedup, r.LengthUm)
		}
	}
	if rows[1].Speedup <= rows[0].Speedup {
		t.Fatalf("speedup must grow with wirelength: %g vs %g", rows[0].Speedup, rows[1].Speedup)
	}
	if rows[1].LinearElements <= rows[0].LinearElements {
		t.Fatal("element count must grow with length")
	}
	if out := RenderFigure5(rows); !strings.Contains(out, "speedup") {
		t.Fatal("render")
	}
}

func TestFigure6MeanStdAgree(t *testing.T) {
	res, err := RunFigure6(Ex2Options{Samples: 12}, 40)
	if err != nil {
		t.Fatal(err)
	}
	// "in the order of numerical precision error" — we allow 1%.
	if res.MeanErrPct > 1 {
		t.Fatalf("mean error %g%%", res.MeanErrPct)
	}
	if res.StdErrPct > 5 {
		t.Fatalf("std error %g%%", res.StdErrPct)
	}
	if res.Framework.Std <= 0 {
		t.Fatal("wire variations must spread the delays")
	}
	if out := RenderFigure6(res); !strings.Contains(out, "histograms") {
		t.Fatal("render")
	}
}

func ex3SmallSet() []iscas.Benchmark {
	return []iscas.Benchmark{{Name: "s27", Stages: 6, Seed: 27}, {Name: "s208", Stages: 9, Seed: 208}}
}

func TestTable4SpeedupShape(t *testing.T) {
	o := Ex3Options{Samples: 10}
	rows, err := RunTable4(o, ex3SmallSet()[:1], []int{10, 100}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Speedup must exceed 1 and grow with the linear-element count
	// (Table 4's qualitative content).
	if rows[0].Speedup <= 1 || rows[1].Speedup <= rows[0].Speedup {
		t.Fatalf("speedups: %g then %g", rows[0].Speedup, rows[1].Speedup)
	}
	if out := RenderTable4(rows); !strings.Contains(out, "s27") {
		t.Fatal("render")
	}
}

func TestTable5GAvsMC(t *testing.T) {
	o := Ex3Options{Samples: 30, Workers: -1}
	rows, err := RunTable5(o, ex3SmallSet(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		// GA mean equals the nominal delay; MC mean must sit nearby.
		if math.Abs(r.GAMeanPs-r.MCMeanPs) > 0.05*r.MCMeanPs {
			t.Fatalf("%s: GA mean %g vs MC %g", r.Circuit, r.GAMeanPs, r.MCMeanPs)
		}
		// σ of the same order.
		ratio := r.GAStdPs / r.MCStdPs
		if ratio < 0.4 || ratio > 2.5 {
			t.Fatalf("%s: GA std %g vs MC %g", r.Circuit, r.GAStdPs, r.MCStdPs)
		}
		// GA cost is linear in sources: with both DL and VT it spends
		// 3+2·2 = 7 stage sims per stage.
		wantSims := r.Stages * (3 + 2*numSources(r))
		if r.GASimulations != wantSims {
			t.Fatalf("%s: GA sims %d, want %d", r.Circuit, r.GASimulations, wantSims)
		}
	}
	// Adding the VT source must not shrink σ for the same circuit.
	if rows[2].GAStdPs < rows[0].GAStdPs {
		t.Fatal("adding a variation source must not reduce GA σ")
	}
	if out := RenderTable5(rows); !strings.Contains(out, "GA") {
		t.Fatal("render")
	}
}

func numSources(r Table5Row) int {
	n := 0
	if r.StdDL > 0 {
		n++
	}
	if r.StdVT > 0 {
		n++
	}
	return n
}

func TestFigure7Histograms(t *testing.T) {
	o := Ex3Options{Samples: 24, Workers: -1}
	res, err := RunFigure7(o, iscas.Benchmark{Name: "s27", Stages: 6, Seed: 27}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MCDelays) != 24 || len(res.GADelays) != 24 {
		t.Fatal("sample counts")
	}
	if res.GAStd <= 0 {
		t.Fatal("GA σ must be positive")
	}
	if out := RenderFigure7(res); !strings.Contains(out, "Monte-Carlo") {
		t.Fatal("render")
	}
}

func TestFullPathNetlistStructure(t *testing.T) {
	o := Ex3Options{}
	o.setDefaults()
	nl, out, err := buildFullPathNetlist(o, []string{"INV", "NAND2", "NOR2"}, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("no output node")
	}
	st := nl.Stats()
	if st.MOSFETs != 2+4+4 {
		t.Fatalf("MOSFETs = %d", st.MOSFETs)
	}
	// 3 stages × 10 linear elements of wire.
	if st.LinearElements < 30 {
		t.Fatalf("linear elements = %d", st.LinearElements)
	}
	// Side-input sources: NAND2 and NOR2 each need one.
	if st.VSources != 2+2 { // VDD + VIN + 2 side sources
		t.Fatalf("VSources = %d", st.VSources)
	}
	_ = circuit.Gnd
}

func TestFrameworkVsSpicePathDelay(t *testing.T) {
	// The decisive cross-validation behind Example 3: the stage-by-stage
	// linear-centric path delay must match a full-path Newton transient of
	// the identical transistor-level circuit.
	o := Ex3Options{}
	o.setDefaults()
	cells := []string{"INV", "NAND2", "NOR2"}
	elems := 20
	p, err := core.BuildChain(core.ChainSpec{
		Cells: cells, Drive: o.Drive, ElemsBetween: elems,
		WireLengthUm: float64(elems) / 2,
		Tech:         o.Tech, DT: o.DT, TStop: o.StageWin, Order: o.Order,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p.Evaluate(teta.RunSpec{}, false)
	if err != nil {
		t.Fatal(err)
	}
	nl, out, err := buildFullPathNetlist(o, cells, elems, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := spice.NewSimulator(nl, spice.Options{DT: o.DT, TStop: 3e-9, Models: o.Tech})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{out})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := res.Waveform(out)
	if err != nil {
		t.Fatal(err)
	}
	// Path of 3 inverting stages: input rises at 0.3 ns (50%), output
	// falls; measure the full-path 50% crossing.
	cross := wf.CrossTime(o.Tech.VDD/2, -1)
	spiceDelay := cross - 0.3e-9
	if math.IsNaN(cross) {
		t.Fatal("spice path did not transition")
	}
	rel := math.Abs(ev.Delay-spiceDelay) / spiceDelay
	if rel > 0.06 {
		t.Fatalf("framework path delay %.2f ps vs spice %.2f ps (%.1f%% apart)",
			ev.Delay*1e12, spiceDelay*1e12, rel*100)
	}
}

func TestRenderersLayout(t *testing.T) {
	// Golden-ish format guards for the report renderers.
	t3 := &Table3Result{Order: 4, Rows: []Table3Row{
		{P: 0.05, UnstablePole: 1.4e13, NumUnstable: 1},
		{P: 0.02},
	}}
	out := RenderTable3(t3)
	for _, want := range []string{"Table 3", "0.05", "1.4e+13", "stable"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table3 render missing %q:\n%s", want, out)
		}
	}
	f5 := []Figure5Row{{LengthUm: 25, LinearElements: 201, FrameworkSec: 0.003, SPICESec: 0.24, Speedup: 80}}
	out = RenderFigure5(f5)
	for _, want := range []string{"Figure 5", "25", "201", "80.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure5 render missing %q:\n%s", want, out)
		}
	}
	t4 := []Table4Row{{Circuit: "s27", Stages: 6, Elems: 500, FrameworkSec: 0.008, SPICESec: 1.19, Speedup: 148.75}}
	out = RenderTable4(t4)
	for _, want := range []string{"Table 4", "s27", "500", "148.75"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table4 render missing %q:\n%s", want, out)
		}
	}
	t5 := []Table5Row{{Circuit: "s832", Stages: 9, StdDL: 0.33, StdVT: 0.33, GAMeanPs: 343.9, GAStdPs: 14.6, MCMeanPs: 351.5, MCStdPs: 15.1}}
	out = RenderTable5(t5)
	for _, want := range []string{"Table 5", "s832", "GA", "MC", "343.90", "15.10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table5 render missing %q:\n%s", want, out)
		}
	}
}
