package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"lcsim/internal/core"
	"lcsim/internal/runner"
	"lcsim/internal/stat"
	"lcsim/internal/teta"
)

// Example2Evaluator builds a per-sample delay evaluator for one named
// stage-evaluation backend on the Example-2 (Figure 4) coupled stage:
// the victim far-end 50% falling delay relative to the victim input's
// 50% crossing. The engine names follow the core registry (teta-fast,
// teta-exact, teta-direct, spice-golden); "" selects teta-fast. The
// returned evaluator is safe for concurrent use.
func Example2Evaluator(o Ex2Options, lengthUm float64, engine string) (func(rs teta.RunSpec) (float64, error), error) {
	o.setDefaults()
	var run func(st *teta.Stage, rs teta.RunSpec) (*teta.Result, error)
	switch engine {
	case "", core.EngineTetaFast:
		run = func(st *teta.Stage, rs teta.RunSpec) (*teta.Result, error) { return st.Run(rs) }
	case core.EngineTetaExact:
		run = func(st *teta.Stage, rs teta.RunSpec) (*teta.Result, error) { return st.RunExact(rs) }
	case core.EngineTetaDirect:
		run = func(st *teta.Stage, rs teta.RunSpec) (*teta.Result, error) { return st.RunDirect(rs) }
	case core.EngineSpiceGolden:
		h, err := ex2SpiceHarness(o, lengthUm)
		if err != nil {
			return nil, err
		}
		return func(rs teta.RunSpec) (float64, error) {
			ins := rs.Inputs
			if ins == nil {
				ins = ex2Inputs(o)
			}
			wf, _, err := h.Eval(rs.W, rs.DL, rs.DVT, ins)
			if err != nil {
				return 0, err
			}
			cross := wf.CrossTime(o.Tech.VDD/2, -1)
			if math.IsNaN(cross) {
				return 0, fmt.Errorf("experiments: spice probe did not cross 50%%")
			}
			return cross - 0.30e-9, nil
		}, nil
	default:
		return nil, fmt.Errorf("experiments: no Example-2 evaluator for engine %q (want teta-fast, teta-exact, teta-direct or spice-golden)", engine)
	}
	st, err := ex2Stage(o, lengthUm, false)
	if err != nil {
		return nil, err
	}
	return func(rs teta.RunSpec) (float64, error) {
		res, err := run(st, rs)
		if err != nil {
			return 0, err
		}
		return ex2Delay(o, res)
	}, nil
}

// EngineValidation is one engine's column of a cross-engine validation:
// the delay statistics it produces on a shared sample set plus its
// deviation from the reference (first) engine.
type EngineValidation struct {
	Engine  string
	Summary stat.Summary
	// Delays holds the per-sample delays, aligned across engines by
	// sample index. Under the skip policy a skipped sample leaves a NaN
	// hole, so the alignment survives engines skipping different samples.
	Delays []float64
	// Skipped counts this engine's skipped samples (NaN holes in Delays).
	Skipped int
	// MeanDeltaPct/StdDeltaPct/MaxAbsDelta compare against the reference
	// engine (zero for the reference itself): signed mean and σ deviation
	// in percent, and the largest per-sample |Δdelay| in seconds.
	MeanDeltaPct float64
	StdDeltaPct  float64
	MaxAbsDelta  float64
}

// ValidateExample2 runs the same Example-2 sample set through each named
// engine and reports per-engine statistics plus deltas against the first
// (reference) engine — the cross-backend consistency check behind
// `lcsim validate`. Sample i is identical across engines, so the
// per-sample deltas isolate pure backend disagreement.
func ValidateExample2(o Ex2Options, lengthUm float64, engines []string) ([]EngineValidation, error) {
	o.setDefaults()
	if len(engines) == 0 {
		return nil, fmt.Errorf("experiments: validation needs at least one engine")
	}
	switch o.OnFailure {
	case core.FailFast, core.Skip:
	default:
		return nil, fmt.Errorf("experiments: validation supports the fail-fast and skip policies, not %s (the Example-2 evaluators have no degradation ladder)", o.OnFailure)
	}
	specs := ex2SampleSpecs(o)
	out := make([]EngineValidation, len(engines))
	for ei, name := range engines {
		eval, err := Example2Evaluator(o, lengthUm, name)
		if err != nil {
			return nil, err
		}
		eval = withDeadline(o.SampleTimeout, eval)
		delays := make([]float64, len(specs))
		var skipped int
		if o.OnFailure == core.Skip {
			// Pre-fill with NaN: a skipped sample never reaches the sink,
			// so its hole marks the index as undelivered for this engine.
			for i := range delays {
				delays[i] = math.NaN()
			}
			err = runner.MapWorker(context.Background(), len(specs),
				runner.Options{
					Workers:   o.Workers,
					BatchSize: o.BatchSize,
					OnSkip:    func(int, error) { skipped++ },
				},
				func() any { return nil },
				runner.WithRecovery(
					func(_ context.Context, i int, _ any) (float64, error) { return eval(specs[i]) },
					func(_ context.Context, i int, _ any, cause error) (float64, error) {
						return 0, runner.SkipSample(core.NewSampleError(i, cause))
					}),
				func(i int, d float64) { delays[i] = d })
		} else {
			err = runner.Map(context.Background(), len(specs),
				runner.Options{Workers: o.Workers, BatchSize: o.BatchSize},
				func(_ context.Context, i int) (float64, error) { return eval(specs[i]) },
				func(i int, d float64) { delays[i] = d })
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: engine %s: %w", name, err)
		}
		out[ei] = EngineValidation{Engine: name, Summary: summarizeDelivered(delays), Delays: delays, Skipped: skipped}
	}
	FinishDeltas(out)
	return out, nil
}

// withDeadline bounds each evaluation of eval by the watchdog deadline
// d (0 = no bound, eval is returned unchanged). On timeout the
// evaluation goroutine is abandoned — the Example-2 evaluators own no
// shared scratch, so a stray goroutine finishing late is harmless — and
// the sample fails with core.ErrSampleTimeout so the OnFailure policy
// classifies it as a timeout.
func withDeadline(d time.Duration, eval func(rs teta.RunSpec) (float64, error)) func(rs teta.RunSpec) (float64, error) {
	if d <= 0 {
		return eval
	}
	type outcome struct {
		v   float64
		err error
	}
	return func(rs teta.RunSpec) (float64, error) {
		done := make(chan outcome, 1)
		go func() {
			v, err := eval(rs)
			done <- outcome{v, err}
		}()
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case o := <-done:
			return o.v, o.err
		case <-t.C:
			return 0, fmt.Errorf("experiments: no result after %v: %w", d, core.ErrSampleTimeout)
		}
	}
}

// summarizeDelivered summarizes the delivered entries of an aligned
// delay slice, ignoring the NaN holes left by skipped samples.
func summarizeDelivered(delays []float64) stat.Summary {
	finite := make([]float64, 0, len(delays))
	for _, d := range delays {
		if !math.IsNaN(d) {
			finite = append(finite, d)
		}
	}
	return stat.Summarize(finite)
}

// FinishDeltas fills the delta columns of a validation set against its
// first (reference) column. A per-sample delta exists only where both
// engines delivered the sample — NaN holes on either side pair with
// nothing, so skip-policy runs still compare like with like.
func FinishDeltas(cols []EngineValidation) {
	ref := cols[0]
	for i := 1; i < len(cols); i++ {
		cols[i].MeanDeltaPct = 100 * (cols[i].Summary.Mean - ref.Summary.Mean) / ref.Summary.Mean
		cols[i].StdDeltaPct = 100 * (cols[i].Summary.Std - ref.Summary.Std) / ref.Summary.Std
		for k, d := range cols[i].Delays {
			if math.IsNaN(d) || math.IsNaN(ref.Delays[k]) {
				continue
			}
			if ad := math.Abs(d - ref.Delays[k]); ad > cols[i].MaxAbsDelta {
				cols[i].MaxAbsDelta = ad
			}
		}
	}
}
