package experiments

import (
	"context"
	"fmt"
	"math"

	"lcsim/internal/core"
	"lcsim/internal/runner"
	"lcsim/internal/stat"
	"lcsim/internal/teta"
)

// Example2Evaluator builds a per-sample delay evaluator for one named
// stage-evaluation backend on the Example-2 (Figure 4) coupled stage:
// the victim far-end 50% falling delay relative to the victim input's
// 50% crossing. The engine names follow the core registry (teta-fast,
// teta-exact, teta-direct, spice-golden); "" selects teta-fast. The
// returned evaluator is safe for concurrent use.
func Example2Evaluator(o Ex2Options, lengthUm float64, engine string) (func(rs teta.RunSpec) (float64, error), error) {
	o.setDefaults()
	var run func(st *teta.Stage, rs teta.RunSpec) (*teta.Result, error)
	switch engine {
	case "", core.EngineTetaFast:
		run = func(st *teta.Stage, rs teta.RunSpec) (*teta.Result, error) { return st.Run(rs) }
	case core.EngineTetaExact:
		run = func(st *teta.Stage, rs teta.RunSpec) (*teta.Result, error) { return st.RunExact(rs) }
	case core.EngineTetaDirect:
		run = func(st *teta.Stage, rs teta.RunSpec) (*teta.Result, error) { return st.RunDirect(rs) }
	case core.EngineSpiceGolden:
		h, err := ex2SpiceHarness(o, lengthUm)
		if err != nil {
			return nil, err
		}
		return func(rs teta.RunSpec) (float64, error) {
			ins := rs.Inputs
			if ins == nil {
				ins = ex2Inputs(o)
			}
			wf, _, err := h.Eval(rs.W, rs.DL, rs.DVT, ins)
			if err != nil {
				return 0, err
			}
			cross := wf.CrossTime(o.Tech.VDD/2, -1)
			if math.IsNaN(cross) {
				return 0, fmt.Errorf("experiments: spice probe did not cross 50%%")
			}
			return cross - 0.30e-9, nil
		}, nil
	default:
		return nil, fmt.Errorf("experiments: no Example-2 evaluator for engine %q (want teta-fast, teta-exact, teta-direct or spice-golden)", engine)
	}
	st, err := ex2Stage(o, lengthUm, false)
	if err != nil {
		return nil, err
	}
	return func(rs teta.RunSpec) (float64, error) {
		res, err := run(st, rs)
		if err != nil {
			return 0, err
		}
		return ex2Delay(o, res)
	}, nil
}

// EngineValidation is one engine's column of a cross-engine validation:
// the delay statistics it produces on a shared sample set plus its
// deviation from the reference (first) engine.
type EngineValidation struct {
	Engine  string
	Summary stat.Summary
	Delays  []float64 // per-sample delays, aligned across engines
	// MeanDeltaPct/StdDeltaPct/MaxAbsDelta compare against the reference
	// engine (zero for the reference itself): signed mean and σ deviation
	// in percent, and the largest per-sample |Δdelay| in seconds.
	MeanDeltaPct float64
	StdDeltaPct  float64
	MaxAbsDelta  float64
}

// ValidateExample2 runs the same Example-2 sample set through each named
// engine and reports per-engine statistics plus deltas against the first
// (reference) engine — the cross-backend consistency check behind
// `lcsim validate`. Sample i is identical across engines, so the
// per-sample deltas isolate pure backend disagreement.
func ValidateExample2(o Ex2Options, lengthUm float64, engines []string) ([]EngineValidation, error) {
	o.setDefaults()
	if len(engines) == 0 {
		return nil, fmt.Errorf("experiments: validation needs at least one engine")
	}
	specs := ex2SampleSpecs(o)
	out := make([]EngineValidation, len(engines))
	for ei, name := range engines {
		eval, err := Example2Evaluator(o, lengthUm, name)
		if err != nil {
			return nil, err
		}
		delays := make([]float64, len(specs))
		err = runner.Map(context.Background(), len(specs),
			runner.Options{Workers: o.workers()},
			func(_ context.Context, i int) (float64, error) { return eval(specs[i]) },
			func(i int, d float64) { delays[i] = d })
		if err != nil {
			return nil, fmt.Errorf("experiments: engine %s: %w", name, err)
		}
		out[ei] = EngineValidation{Engine: name, Summary: stat.Summarize(delays), Delays: delays}
	}
	ref := out[0]
	for i := 1; i < len(out); i++ {
		out[i].MeanDeltaPct = 100 * (out[i].Summary.Mean - ref.Summary.Mean) / ref.Summary.Mean
		out[i].StdDeltaPct = 100 * (out[i].Summary.Std - ref.Summary.Std) / ref.Summary.Std
		for k, d := range out[i].Delays {
			if ad := math.Abs(d - ref.Delays[k]); ad > out[i].MaxAbsDelta {
				out[i].MaxAbsDelta = ad
			}
		}
	}
	return out, nil
}
