package experiments

import (
	"math"
	"testing"

	"lcsim/internal/interconnect"
	"lcsim/internal/teta"
)

// TestFastPathMatchesExactExtractionDelay is the consistency contract of
// the characterize-once variational macromodel: on the Example-2 coupled
// stage, the fast path's delay must match the per-sample exact-extraction
// path to ≤1% at 1σ sample magnitudes (|wᵢ| = 0.577, the σ of the uniform
// full-band sources), across sign patterns that exercise the coupling
// modes. Full-band corners (|wᵢ| = 1) get a looser 2% bound — still far
// inside the library's own linearization error.
func TestFastPathMatchesExactExtractionDelay(t *testing.T) {
	o := Ex2Options{Samples: 4}
	o.setDefaults()
	fastSt, err := ex2Stage(o, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	if !fastSt.BuildStats.VarMacro {
		t.Fatalf("variational macromodel not characterized: %s", fastSt.BuildStats.VarMacroNote)
	}
	exactSt, err := ex2Stage(o, 40, true)
	if err != nil {
		t.Fatal(err)
	}
	signs := [][]float64{
		{1, 1, 1, 1, 1},
		{-1, -1, -1, -1, -1},
		{1, -1, 1, -1, 1},
		{-1, 1, -1, 1, -1},
		{1, 1, -1, -1, 1},
	}
	for _, scale := range []float64{0.577, 1.0} {
		limit := 0.01
		if scale == 1.0 {
			limit = 0.02
		}
		for _, sgn := range signs {
			w := map[string]float64{}
			for j, pn := range interconnect.WireParams {
				w[pn] = scale * sgn[j]
			}
			rs := teta.RunSpec{W: w, Inputs: ex2Inputs(o)}
			rf, err := fastSt.Run(rs)
			if err != nil {
				t.Fatalf("fast path at scale %g, signs %v: %v", scale, sgn, err)
			}
			df, err := ex2Delay(o, rf)
			if err != nil {
				t.Fatal(err)
			}
			re, err := exactSt.Run(rs)
			if err != nil {
				t.Fatalf("exact path at scale %g, signs %v: %v", scale, sgn, err)
			}
			de, err := ex2Delay(o, re)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(df-de) / de; rel > limit {
				t.Errorf("scale %g, signs %v: fast delay %.4g ps vs exact %.4g ps (%.2f%% > %.0f%%)",
					scale, sgn, df*1e12, de*1e12, 100*rel, 100*limit)
			}
		}
	}
}
