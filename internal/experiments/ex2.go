package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"lcsim/internal/circuit"
	"lcsim/internal/core"
	"lcsim/internal/device"
	"lcsim/internal/interconnect"
	"lcsim/internal/runner"
	"lcsim/internal/spice"
	"lcsim/internal/stat"
	"lcsim/internal/teta"
)

// Ex2Options configures the Example 2 experiments (Figures 5 and 6):
// the 4-port stage of Figure 4 — three identical coupled minimum-width
// lines, victim in the middle, driven at the near ends, the victim's far
// end probed — swept over wirelength with 100-sample LHS over uniform
// W/T/S/H/ρ variations.
type Ex2Options struct {
	Tech      *device.ModelSet
	Wire      interconnect.WireTech
	Samples   int // LHS samples (paper: 100)
	Seed      int64
	Drive     float64 // driver strength
	DT, TStop float64
	Order     int
	// Workers selects evaluation parallelism per the core.RunConfig
	// convention: 0 = serial, negative = GOMAXPROCS, positive = exact.
	Workers int
	// BatchSize is the per-dispatch sample batch per the core.RunConfig
	// convention (0 = automatic).
	BatchSize int
	// OnFailure picks the per-sample failure policy for the validation
	// sweeps (FailFast or Skip; the Example-2 evaluators have no
	// degradation ladder). Zero value = FailFast.
	OnFailure core.FailurePolicy
	// SampleTimeout, when positive, bounds each sample evaluation of the
	// validation sweeps with a watchdog deadline, per the core.RunConfig
	// convention: a sample that has not returned in time fails with
	// core.ErrSampleTimeout and is handled by OnFailure.
	SampleTimeout time.Duration
	// MacroCache, when non-nil, is the cross-run macromodel store stage
	// construction characterizes through (see teta.Config.MacroCache).
	MacroCache teta.MacroStore
}

func (o *Ex2Options) setDefaults() {
	if o.Tech == nil {
		o.Tech = device.Tech180
	}
	if o.Wire.Name == "" {
		o.Wire = interconnect.Wire180
	}
	if o.Samples <= 0 {
		o.Samples = 100
	}
	if o.Drive <= 0 {
		o.Drive = 4
	}
	if o.DT <= 0 {
		o.DT = 4e-12
	}
	if o.TStop <= 0 {
		o.TStop = 2e-9
	}
	if o.Order <= 0 {
		o.Order = 6
	}
}

// ex2Stage builds the Figure-4 stage for one wirelength: ports are
// [victim-near, aggressor1-near, aggressor2-near, victim-far(probe)].
// exact pins the stage to per-sample extraction (the paper's
// library-evaluation path); accuracy comparisons use it, timing sweeps
// run the characterize-once fast path.
func ex2Stage(o Ex2Options, lengthUm float64, exact bool) (*teta.Stage, error) {
	bus := interconnect.BuildBus(o.Wire, 3, lengthUm, 1, true)
	nl := bus.Netlist
	nl.MarkPort(bus.In[1])  // victim (middle line) near end — port 0
	nl.MarkPort(bus.In[0])  // aggressor A near end — port 1
	nl.MarkPort(bus.In[2])  // aggressor B near end — port 2
	nl.MarkPort(bus.Out[1]) // victim far end (probe) — port 3
	// Receiver load at the probed far end.
	nl.AddC("Crcv", bus.Out[1], "0", circuit.V(4e-15))
	st, err := teta.BuildStage(nl, []teta.DriverSpec{
		{Name: "victim", Cell: device.INV, Drive: o.Drive, Port: 0},
		{Name: "aggrA", Cell: device.INV, Drive: o.Drive, Port: 1},
		{Name: "aggrB", Cell: device.INV, Drive: o.Drive, Port: 2},
	}, teta.Config{Tech: o.Tech, DT: o.DT, TStop: o.TStop, Order: o.Order, ExactExtract: exact, MacroCache: o.MacroCache})
	if err != nil {
		return nil, err
	}
	// Warm-start the per-sample DC Newton from the nominal operating point.
	if err := st.PrimeDC(ex2Inputs(o)); err != nil {
		return nil, err
	}
	return st, nil
}

// ex2Inputs are the Figure-4 stimuli: the victim switches (rising input →
// falling output), the aggressors switch the other way slightly later,
// maximizing coupling activity at the probe.
func ex2Inputs(o Ex2Options) [][]circuit.Waveform {
	vdd := o.Tech.VDD
	return [][]circuit.Waveform{
		{circuit.SatRamp{V0: 0, V1: vdd, Start: 0.25e-9, Slew: 0.1e-9}},
		{circuit.SatRamp{V0: vdd, V1: 0, Start: 0.30e-9, Slew: 0.1e-9}},
		{circuit.SatRamp{V0: vdd, V1: 0, Start: 0.30e-9, Slew: 0.1e-9}},
	}
}

// ex2SampleSpecs draws the LHS plan over the five wire parameters with
// uniform distributions spanning the full 3σ tolerance band (as in the
// paper's Example 2).
func ex2SampleSpecs(o Ex2Options) []teta.RunSpec {
	rng := stat.NewRNG(o.Seed)
	cube := stat.LatinHypercube(rng, o.Samples, len(interconnect.WireParams))
	dists := make([]stat.Dist, len(interconnect.WireParams))
	for i := range dists {
		dists[i] = stat.Uniform{Lo: -1, Hi: 1}
	}
	rows := stat.SamplePlan(cube, dists)
	specs := make([]teta.RunSpec, o.Samples)
	for i, row := range rows {
		w := map[string]float64{}
		for j, p := range interconnect.WireParams {
			w[p] = row[j]
		}
		specs[i] = teta.RunSpec{W: w, Inputs: ex2Inputs(o)}
	}
	return specs
}

// ex2Delay measures the victim far-end 50% falling delay relative to the
// victim input's 50% crossing.
func ex2Delay(o Ex2Options, res *teta.Result) (float64, error) {
	wf, err := res.PortWaveform(3)
	if err != nil {
		return 0, err
	}
	cross := wf.CrossTime(o.Tech.VDD/2, -1)
	if math.IsNaN(cross) {
		return 0, fmt.Errorf("experiments: probe did not cross 50%%")
	}
	return cross - 0.30e-9, nil
}

// ex2SpiceHarness builds the transistor-level replica of the Figure-4
// stage on the generic spice.StageHarness: three INV drivers onto a fresh
// 3-line coupled bus per sample (BuildBus's node names are deterministic,
// so a throwaway build supplies the driver and probe node names).
func ex2SpiceHarness(o Ex2Options, lengthUm float64) (*spice.StageHarness, error) {
	nodes := interconnect.BuildBus(o.Wire, 3, lengthUm, 1, true)
	buildLoad := func() (*circuit.Netlist, error) {
		bus := interconnect.BuildBus(o.Wire, 3, lengthUm, 1, true)
		bus.Netlist.AddC("Crcv", bus.Out[1], "0", circuit.V(4e-15))
		return bus.Netlist, nil
	}
	return spice.NewStageHarness(spice.StageSpec{
		Tech: o.Tech,
		Drivers: []spice.HarnessDriver{
			{Name: "v", Cell: device.INV, Drive: o.Drive, Out: nodes.In[1]},
			{Name: "a", Cell: device.INV, Drive: o.Drive, Out: nodes.In[0]},
			{Name: "b", Cell: device.INV, Drive: o.Drive, Out: nodes.In[2]},
		},
		BuildLoad: buildLoad,
		Probe:     nodes.Out[1],
		DT:        o.DT, TStop: o.TStop,
	})
}

// ex2SpiceDelay runs the same stage in the Newton baseline at one sample.
func ex2SpiceDelay(o Ex2Options, lengthUm float64, w map[string]float64) (float64, *spice.Stats, error) {
	h, err := ex2SpiceHarness(o, lengthUm)
	if err != nil {
		return 0, nil, err
	}
	wf, stats, err := h.Eval(w, 0, 0, ex2Inputs(o))
	if err != nil {
		return 0, nil, err
	}
	cross := wf.CrossTime(o.Tech.VDD/2, -1)
	if math.IsNaN(cross) {
		return 0, nil, fmt.Errorf("experiments: spice probe did not cross 50%%")
	}
	return cross - 0.30e-9, &stats, nil
}

// Figure5Row is one wirelength point of the CPU-time comparison.
type Figure5Row struct {
	LengthUm       float64
	LinearElements int
	FrameworkSec   float64 // per-sample framework simulation time
	SetupSec       float64 // one-time variational characterization time
	SPICESec       float64 // per-sample Newton baseline time
	Speedup        float64
}

// RunFigure5 sweeps wirelength and compares per-sample CPU time of the
// linear-centric framework against the Newton baseline. spiceSamples
// bounds how many (slow) baseline runs are timed per length.
func RunFigure5(o Ex2Options, lengths []float64, spiceSamples int) ([]Figure5Row, error) {
	o.setDefaults()
	if spiceSamples <= 0 {
		spiceSamples = 2
	}
	var rows []Figure5Row
	for _, l := range lengths {
		t0 := time.Now()
		st, err := ex2Stage(o, l, false)
		if err != nil {
			return nil, fmt.Errorf("length %g: %w", l, err)
		}
		setup := time.Since(t0).Seconds()
		specs := ex2SampleSpecs(o)
		t1 := time.Now()
		for _, rs := range specs {
			res, err := st.Run(rs)
			if err != nil {
				return nil, fmt.Errorf("length %g: %w", l, err)
			}
			if _, err := ex2Delay(o, res); err != nil {
				return nil, err
			}
		}
		fwPer := time.Since(t1).Seconds() / float64(len(specs))
		t2 := time.Now()
		nSp := spiceSamples
		if nSp > len(specs) {
			nSp = len(specs)
		}
		for i := 0; i < nSp; i++ {
			if _, _, err := ex2SpiceDelay(o, l, specs[i].W); err != nil {
				return nil, fmt.Errorf("length %g spice: %w", l, err)
			}
		}
		spPer := time.Since(t2).Seconds() / float64(nSp)
		rows = append(rows, Figure5Row{
			LengthUm:       l,
			LinearElements: st.BuildStats.LoadElements,
			FrameworkSec:   fwPer,
			SetupSec:       setup,
			SPICESec:       spPer,
			Speedup:        spPer / fwPer,
		})
	}
	return rows, nil
}

// Figure6Result compares the delay distribution from the variational
// framework against exact per-sample re-reduction (the accuracy
// comparison behind the paper's histogram pair).
type Figure6Result struct {
	LengthUm        float64
	Framework       stat.Summary
	Reference       stat.Summary
	FrameworkDelays []float64
	ReferenceDelays []float64
	KS              float64
	MeanErrPct      float64
	StdErrPct       float64
}

// RunFigure6 evaluates the 100-sample delay histograms at one wirelength
// with the variational library and with exact per-sample recharacterized
// models. Samples run on the parallel runtime per o.Workers; results are
// identical at any worker count.
func RunFigure6(o Ex2Options, lengthUm float64) (*Figure6Result, error) {
	o.setDefaults()
	// The framework stage runs the default characterize-once fast path, so
	// this comparison covers both approximation layers at once: the
	// variational library AND the macromodel linearization, against exact
	// per-sample re-reduction.
	st, err := ex2Stage(o, lengthUm, false)
	if err != nil {
		return nil, err
	}
	specs := ex2SampleSpecs(o)
	type pair struct{ fw, ref float64 }
	fw := make([]float64, 0, len(specs))
	ref := make([]float64, 0, len(specs))
	err = runner.Map(context.Background(), len(specs),
		runner.Options{Workers: o.Workers, BatchSize: o.BatchSize},
		func(_ context.Context, i int) (pair, error) {
			rs := specs[i]
			r1, err := st.Run(rs)
			if err != nil {
				return pair{}, err
			}
			d1, err := ex2Delay(o, r1)
			if err != nil {
				return pair{}, err
			}
			r2, err := st.RunDirect(rs)
			if err != nil {
				return pair{}, err
			}
			d2, err := ex2Delay(o, r2)
			if err != nil {
				return pair{}, err
			}
			return pair{d1, d2}, nil
		},
		func(_ int, p pair) {
			fw = append(fw, p.fw)
			ref = append(ref, p.ref)
		})
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{
		LengthUm:        lengthUm,
		Framework:       stat.Summarize(fw),
		Reference:       stat.Summarize(ref),
		FrameworkDelays: fw,
		ReferenceDelays: ref,
		KS:              stat.KSDistance(fw, ref),
	}
	res.MeanErrPct = 100 * abs(res.Framework.Mean-res.Reference.Mean) / res.Reference.Mean
	res.StdErrPct = 100 * abs(res.Framework.Std-res.Reference.Std) / res.Reference.Std
	return res, nil
}

// RenderFigure5 prints the CPU-time table behind Figure 5.
func RenderFigure5(rows []Figure5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5 — CPU time per sample vs wirelength (Example 2)\n")
	fmt.Fprintf(&b, "%-10s %-10s %-10s %-14s %-14s %-10s\n", "len(um)", "elements", "setup(s)", "framework(s)", "spice(s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.0f %-10d %-10.3g %-14.4g %-14.4g %-10.1f\n",
			r.LengthUm, r.LinearElements, r.SetupSec, r.FrameworkSec, r.SPICESec, r.Speedup)
	}
	return b.String()
}

// RenderFigure6 prints the histogram pair and statistics of Figure 6.
func RenderFigure6(r *Figure6Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — delay histograms at %g um (Example 2)\n", r.LengthUm)
	fmt.Fprintf(&b, "framework: mean=%.2f ps std=%.2f ps\n", r.Framework.Mean*1e12, r.Framework.Std*1e12)
	fmt.Fprintf(&b, "reference: mean=%.2f ps std=%.2f ps\n", r.Reference.Mean*1e12, r.Reference.Std*1e12)
	fmt.Fprintf(&b, "mean err %.3f%%  std err %.3f%%  KS %.3f\n\n", r.MeanErrPct, r.StdErrPct, r.KS)
	ps := func(v float64) string { return fmt.Sprintf("%8.1f ps", v*1e12) }
	b.WriteString("framework delays:\n")
	b.WriteString(stat.NewHistogram(r.FrameworkDelays, 12).Render(40, ps))
	b.WriteString("reference delays:\n")
	b.WriteString(stat.NewHistogram(r.ReferenceDelays, 12).Render(40, ps))
	return b.String()
}
