package experiments

import (
	"context"
	"fmt"
	"testing"
	"time"

	"lcsim/internal/core"
	"lcsim/internal/iscas"
)

func TestFrameworkOnlyBigRows(t *testing.T) {
	if testing.Short() {
		t.Skip("timing harness")
	}
	o := Ex3Options{}
	o.setDefaults()
	sources := core.DeviceSources(o.Tech, 0.33, 0.33)
	for _, tc := range []struct {
		b     iscas.Benchmark
		elems int
	}{
		{iscas.Benchmark{Name: "s1423", Stages: 54, Seed: 1423}, 500},
		{iscas.Benchmark{Name: "s9234", Stages: 58, Seed: 9234}, 10},
		{iscas.Benchmark{Name: "s9234", Stages: 58, Seed: 9234}, 500},
	} {
		p, cells, err := buildBenchPath(o, tc.b, tc.elems, false)
		if err != nil {
			t.Fatal(err)
		}
		const n = 10
		t0 := time.Now()
		if _, err := p.MonteCarloCtx(context.Background(), core.MCConfig{N: n, Sources: sources, RunConfig: core.RunConfig{Seed: 2}}); err != nil {
			t.Fatal(err)
		}
		per := time.Since(t0).Seconds() / n
		fmt.Printf("fw-only: %s stages=%d elems=%d %.4gs/sample\n", tc.b.Name, len(cells), tc.elems, per)
	}
}
