package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"lcsim/internal/circuit"
	"lcsim/internal/core"
	"lcsim/internal/device"
	"lcsim/internal/interconnect"
	"lcsim/internal/iscas"
	"lcsim/internal/spice"
	"lcsim/internal/stat"
)

// Ex3Options configures the ISCAS-89 experiments (Tables 4, 5, Figure 7).
type Ex3Options struct {
	Tech     *device.ModelSet
	Drive    float64
	DT       float64
	StageWin float64 // per-stage simulation window
	Order    int
	Samples  int // MC samples (paper: 100)
	Seed     int64
	// Workers selects MC evaluation parallelism per the core.RunConfig
	// convention: 0 = serial, negative = GOMAXPROCS, positive = exact.
	Workers int
	// Progress, when non-nil, receives one line per completed Table-4 row
	// (the baseline transients on the big circuits take minutes each).
	Progress io.Writer
}

func (o *Ex3Options) setDefaults() {
	if o.Tech == nil {
		o.Tech = device.Tech180
	}
	if o.Drive <= 0 {
		o.Drive = 2
	}
	if o.DT <= 0 {
		o.DT = 4e-12
	}
	if o.StageWin <= 0 {
		o.StageWin = 1.6e-9
	}
	if o.Order <= 0 {
		o.Order = 4
	}
	if o.Samples <= 0 {
		o.Samples = 100
	}
}

// buildBenchPath characterizes the critical path of a benchmark as a
// core chain with the requested inter-stage element count.
func buildBenchPath(o Ex3Options, b iscas.Benchmark, elems int, variational bool) (*core.Path, []string, error) {
	c, err := iscas.Load(b)
	if err != nil {
		return nil, nil, err
	}
	pathGates, err := c.LongestPath()
	if err != nil {
		return nil, nil, err
	}
	cells := iscas.PathCells(pathGates)
	p, err := core.BuildChain(core.ChainSpec{
		Cells:        cells,
		Drive:        o.Drive,
		ElemsBetween: elems,
		WireLengthUm: float64(elems) / 2, // one RC segment per micron
		Variational:  variational,
		Tech:         o.Tech,
		DT:           o.DT,
		TStop:        o.StageWin,
		Order:        o.Order,
	})
	if err != nil {
		return nil, nil, err
	}
	return p, cells, nil
}

// buildFullPathNetlist expands the whole critical path — cells plus
// inter-stage interconnect — into one flat transistor-level netlist for
// the Newton baseline, as the paper's "entire path simulation via
// traditional circuit simulators".
func buildFullPathNetlist(o Ex3Options, cells []string, elems int, dl, dvt float64) (*circuit.Netlist, string, error) {
	nl := circuit.New()
	nl.AddV("VDD", "vdd", "0", circuit.DC(o.Tech.VDD))
	vdd := o.Tech.VDD
	// 50% crossing of the stimulus at exactly 0.3 ns, matching the
	// framework's TStart reference.
	nl.AddV("VIN", "pathin", "0", circuit.SatRamp{V0: 0, V1: vdd, Start: 0.3e-9 - 0.05e-9, Slew: 0.1e-9})
	prev := "pathin"
	wire := interconnect.Wire180
	if o.Tech == device.Tech600 {
		wire = interconnect.Wire600
	}
	for i, cellName := range cells {
		cell, err := device.LookupCell(cellName)
		if err != nil {
			return nil, "", err
		}
		side, _, ok := core.SignalInfo(cellName)
		if !ok {
			return nil, "", fmt.Errorf("experiments: no signal info for %s", cellName)
		}
		ins := make([]string, cell.NIn)
		ins[0] = prev
		for k, lv := range side {
			n := fmt.Sprintf("side%d_%d", i, k)
			val := 0.0
			if lv == 1 {
				val = vdd
			}
			nl.AddV(fmt.Sprintf("VS%d_%d", i, k), n, "0", circuit.DC(val))
			ins[k+1] = n
		}
		out := fmt.Sprintf("st%d_out", i)
		if err := cell.Instantiate(nl, fmt.Sprintf("u%d", i), ins, out, device.BuildOpts{
			Tech: o.Tech, Drive: o.Drive, DL: dl, DVT: dvt,
		}); err != nil {
			return nil, "", err
		}
		far := interconnect.AddLineElements(nl, wire, out, fmt.Sprintf("w%d", i), elems, float64(elems)/2, false)
		prev = far
	}
	return nl, prev, nil
}

// Table4Row is one circuit/element-count entry of the speedup table.
type Table4Row struct {
	Circuit      string
	Stages       int
	Elems        int
	FrameworkSec float64 // per-sample stage-by-stage framework time
	SPICESec     float64 // per-sample full-path Newton time
	Speedup      float64
}

// RunTable4 measures the framework-vs-baseline speedup for each benchmark
// at the two inter-stage element counts of Table 4. fwSamples and
// spiceSamples bound the timed runs (the paper uses 100 MC samples; the
// per-sample ratio is the reported quantity).
func RunTable4(o Ex3Options, set []iscas.Benchmark, elemCounts []int, fwSamples, spiceSamples int) ([]Table4Row, error) {
	o.setDefaults()
	if fwSamples <= 0 {
		fwSamples = 10
	}
	if spiceSamples <= 0 {
		spiceSamples = 1
	}
	sources := core.DeviceSources(o.Tech, 0.33, 0.33)
	var rows []Table4Row
	for _, b := range set {
		for _, elems := range elemCounts {
			p, cells, err := buildBenchPath(o, b, elems, false)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			// Framework timing: per-sample full path evaluation, serial so
			// the per-sample ratio is a single-core quantity.
			mcCfg := core.MCConfig{N: fwSamples, Sources: sources, RunConfig: core.RunConfig{Seed: o.Seed + 1}}
			t0 := time.Now()
			if _, err := p.MonteCarloCtx(context.Background(), mcCfg); err != nil {
				return nil, fmt.Errorf("%s framework MC: %w", b.Name, err)
			}
			fwPer := time.Since(t0).Seconds() / float64(fwSamples)
			// Baseline timing: full-path transient per sample.
			tstop := float64(len(cells))*0.25e-9 + 1e-9
			t1 := time.Now()
			for s := 0; s < spiceSamples; s++ {
				dl := 0.33 * o.Tech.TolDL * float64(s) / float64(spiceSamples+1)
				nl, out, err := buildFullPathNetlist(o, cells, elems, dl, 0)
				if err != nil {
					return nil, err
				}
				sim, err := spice.NewSimulator(nl, spice.Options{DT: o.DT, TStop: tstop, Models: o.Tech})
				if err != nil {
					return nil, err
				}
				if _, err := sim.Run([]string{out}); err != nil {
					return nil, fmt.Errorf("%s spice: %w", b.Name, err)
				}
			}
			spPer := time.Since(t1).Seconds() / float64(spiceSamples)
			row := Table4Row{
				Circuit: b.Name, Stages: len(cells), Elems: elems,
				FrameworkSec: fwPer, SPICESec: spPer, Speedup: spPer / fwPer,
			}
			rows = append(rows, row)
			if o.Progress != nil {
				fmt.Fprintf(o.Progress, "table4: %s stages=%d elems=%d fw=%.4gs spice=%.4gs speedup=%.1f\n",
					row.Circuit, row.Stages, row.Elems, row.FrameworkSec, row.SPICESec, row.Speedup)
			}
		}
	}
	return rows, nil
}

// Table5Row is one circuit × variation setting of Table 5.
type Table5Row struct {
	Circuit       string
	Stages        int
	StdDL, StdVT  float64
	GAMeanPs      float64
	GAStdPs       float64
	MCMeanPs      float64
	MCStdPs       float64
	GASimulations int
	MCSimulations int
}

// RunTable5 reproduces the GA-vs-MC statistics table: longest-path delay
// mean and σ under std(DL) = 0.33 alone and std(DL) = std(VT) = 0.33
// (fractions of the 3σ tolerance class, as in the paper).
func RunTable5(o Ex3Options, set []iscas.Benchmark, elems int) ([]Table5Row, error) {
	o.setDefaults()
	settings := []struct{ dl, vt float64 }{{0.33, 0}, {0.33, 0.33}}
	var rows []Table5Row
	for _, setting := range settings {
		for _, b := range set {
			p, cells, err := buildBenchPath(o, b, elems, false)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			sources := core.DeviceSources(o.Tech, setting.dl, setting.vt)
			ga, err := p.GradientAnalysis(core.GAConfig{Sources: sources})
			if err != nil {
				return nil, fmt.Errorf("%s GA: %w", b.Name, err)
			}
			mc, err := p.MonteCarloCtx(context.Background(), core.MCConfig{
				N: o.Samples, Sources: sources,
				RunConfig: core.RunConfig{Seed: o.Seed, Workers: o.Workers},
			})
			if err != nil {
				return nil, fmt.Errorf("%s MC: %w", b.Name, err)
			}
			rows = append(rows, Table5Row{
				Circuit: b.Name, Stages: len(cells),
				StdDL: setting.dl, StdVT: setting.vt,
				GAMeanPs: ga.Mean * 1e12, GAStdPs: ga.Std * 1e12,
				MCMeanPs: mc.Summary.Mean * 1e12, MCStdPs: mc.Summary.Std * 1e12,
				GASimulations: ga.Simulations,
				MCSimulations: o.Samples * len(cells),
			})
		}
	}
	return rows, nil
}

// Figure7Result holds the MC and GA delay distributions for one circuit.
type Figure7Result struct {
	Circuit  string
	MCDelays []float64
	GAMean   float64
	GAStd    float64
	GADelays []float64 // deterministic normal quantile samples from GA
}

// RunFigure7 produces the histogram pair (MC empirical vs GA normal) for
// one benchmark under combined DL and VT variations.
func RunFigure7(o Ex3Options, b iscas.Benchmark, elems int) (*Figure7Result, error) {
	o.setDefaults()
	p, _, err := buildBenchPath(o, b, elems, false)
	if err != nil {
		return nil, err
	}
	sources := core.DeviceSources(o.Tech, 0.33, 0.33)
	mc, err := p.MonteCarloCtx(context.Background(), core.MCConfig{
		N: o.Samples, Sources: sources, KeepSamples: true,
		RunConfig: core.RunConfig{Seed: o.Seed, Workers: o.Workers},
	})
	if err != nil {
		return nil, err
	}
	ga, err := p.GradientAnalysis(core.GAConfig{Sources: sources})
	if err != nil {
		return nil, err
	}
	res := &Figure7Result{Circuit: b.Name, MCDelays: mc.Delays, GAMean: ga.Mean, GAStd: ga.Std}
	for i := 0; i < o.Samples; i++ {
		u := (float64(i) + 0.5) / float64(o.Samples)
		res.GADelays = append(res.GADelays, stat.Normal{Mean: ga.Mean, Sigma: ga.Std}.Quantile(u))
	}
	return res, nil
}

// RenderTable4 prints the speedup table in the paper's layout.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4 — speedup of the framework vs the Newton baseline (Example 3)\n")
	fmt.Fprintf(&b, "%-8s %-7s %-9s %-14s %-14s %-8s\n", "circuit", "stages", "elements", "framework(s)", "spice(s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-7d %-9d %-14.4g %-14.4g %-8.2f\n",
			r.Circuit, r.Stages, r.Elems, r.FrameworkSec, r.SPICESec, r.Speedup)
	}
	return b.String()
}

// RenderTable5 prints the GA/MC statistics table in the paper's layout.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5 — longest-path delay statistics, GA vs MC (Example 3)\n")
	fmt.Fprintf(&b, "%-8s %-7s %-8s %-8s %-8s %-11s %-10s\n", "circuit", "stages", "std(DL)", "std(VT)", "method", "mean(ps)", "std(ps)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-7d %-8.2f %-8.2f %-8s %-11.2f %-10.2f\n",
			r.Circuit, r.Stages, r.StdDL, r.StdVT, "GA", r.GAMeanPs, r.GAStdPs)
		fmt.Fprintf(&b, "%-8s %-7s %-8s %-8s %-8s %-11.2f %-10.2f\n",
			"", "", "", "", "MC", r.MCMeanPs, r.MCStdPs)
	}
	return b.String()
}

// RenderFigure7 prints the MC and GA histograms side by side.
func RenderFigure7(r *Figure7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — %s longest-path delay (DL & VT variations)\n", r.Circuit)
	ps := func(v float64) string { return fmt.Sprintf("%8.1f ps", v*1e12) }
	b.WriteString("Monte-Carlo:\n")
	b.WriteString(stat.NewHistogram(r.MCDelays, 12).Render(40, ps))
	fmt.Fprintf(&b, "Gradient Analysis (normal, mean %.1f ps, std %.1f ps):\n", r.GAMean*1e12, r.GAStd*1e12)
	b.WriteString(stat.NewHistogram(r.GADelays, 12).Render(40, ps))
	return b.String()
}
