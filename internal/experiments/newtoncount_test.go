package experiments

import (
	"fmt"
	"testing"

	"lcsim/internal/spice"
)

func TestNewtonIterationsDeepPath(t *testing.T) {
	o := Ex3Options{}
	o.setDefaults()
	cells := make([]string, 20)
	for i := range cells {
		cells[i] = "NAND2"
	}
	nl, out, err := buildFullPathNetlist(o, cells, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := spice.NewSimulator(nl, spice.Options{DT: o.DT, TStop: 2e-9, Models: o.Tech})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]string{out})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("20-stage path: steps=%d newton=%d (%.1f/step) dcIter=%d\n",
		res.Stats.Steps, res.Stats.NewtonIterations,
		float64(res.Stats.NewtonIterations)/float64(res.Stats.Steps), res.DCIter)
	// The Newton count per step must stay small (the baseline's cost is
	// the repeated factorization, not iteration churn).
	if avg := float64(res.Stats.NewtonIterations) / float64(res.Stats.Steps); avg > 6 {
		t.Fatalf("Newton averaging %.1f iterations/step", avg)
	}
	if res.DCIter > 500 {
		t.Fatalf("DC took %d iterations", res.DCIter)
	}
}
