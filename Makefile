GO ?= go

.PHONY: check vet build test race race-short bench bench-json fmt

# Full CI gate: vet, build, race-enabled tests (full + short modes),
# paper benchmarks. Run before every merge (see README "Failure policy" /
# pre-merge gate).
check: vet build race race-short bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race detector over the -short subset: exercises the concurrency paths
# (worker pools, engine scratch, ladder walks) without the slow
# spice-golden cross-engine sweeps, so it stays fast enough per-commit.
race-short:
	$(GO) test -race -short ./...

# One iteration of every paper table/figure benchmark (smoke, not timing).
bench:
	$(GO) test -run Bench -bench . -benchtime 1x -count=1 .

# Machine-readable Monte-Carlo perf snapshot (ns/sample, allocs/sample,
# samples/sec at 1 and N workers, plus skipped/degraded/per-class failure
# counters) for tracking the perf trajectory.
bench-json:
	$(GO) run ./cmd/lcsim bench -samples 100 -out BENCH_mc.json

fmt:
	gofmt -l -w .
