GO ?= go

.PHONY: check vet staticcheck build test race race-short bench bench-json checkpoint-resume scaling-smoke yield-smoke ssta-smoke cache-smoke daemon-smoke fmt

# Full CI gate: vet + staticcheck, build, race-enabled tests (full +
# short modes), paper benchmarks, crash-safety kill/resume gate,
# multi-core scaling smoke, importance-sampling yield gate, full-chip
# SSTA gate, warm model-cache gate. Run before every merge (see README
# "Failure policy" / pre-merge gate).
check: vet staticcheck build race race-short bench checkpoint-resume scaling-smoke yield-smoke ssta-smoke cache-smoke daemon-smoke

vet:
	$(GO) vet ./...

# Pinned staticcheck via `go run` (nothing installed); skips itself
# (exit 0, with a notice) when the tool cannot be fetched — offline
# containers still get the full rest of the gate.
staticcheck:
	sh scripts/staticcheck.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race detector over the -short subset: exercises the concurrency paths
# (worker pools, engine scratch, ladder walks) without the slow
# spice-golden cross-engine sweeps, so it stays fast enough per-commit.
race-short:
	$(GO) test -race -short ./...

# One iteration of every paper table/figure benchmark (smoke, not timing).
bench:
	$(GO) test -run Bench -bench . -benchtime 1x -count=1 .

# Machine-readable Monte-Carlo perf snapshot: the worker scaling curve
# over {1,2,4,NumCPU} (ns/sample, samples/sec, utilization and
# channel-wait fraction per point) plus allocs/sample and
# skipped/degraded/per-class failure counters, for tracking the perf
# trajectory. See README "The measured scaling curve" for the schema.
bench-json:
	$(GO) run ./cmd/lcsim bench -samples 100 -yield -min-eval-reduction 100 -out BENCH_mc.json

# Crash-safety gate: 200-sample MC, SIGKILLed mid-sweep, resumed from
# its checkpoint journal; the resumed summary must match an
# uninterrupted reference run bit for bit.
checkpoint-resume:
	sh scripts/checkpoint_resume.sh

# Multi-core scaling gate: asserts the 4-worker bench row beats the
# 1-worker row by >= 1.5x; skips itself (exit 0) on hosts with < 4 CPUs.
scaling-smoke:
	sh scripts/scaling_smoke.sh

# Importance-sampling yield gate: a small IS run at a 2.5σ budget must
# agree with a 20k-sample plain-MC reference within the combined CI,
# and a SIGKILLed + resumed IS run must reproduce the uninterrupted
# estimate bit for bit.
yield-smoke:
	sh scripts/yield_smoke.sh

# Full-chip SSTA gate: block-level statistical STA on s27 must agree
# with a 5k-sample brute-force MC reference within 5% on every sink's
# mean and sigma, and must print bit-identical statistics at 1 and 4
# workers.
ssta-smoke:
	sh scripts/ssta_smoke.sh

# Warm model-cache gate: a path sweep and the s27 SSTA driver each run
# twice over one -model-cache directory; the second run must report
# zero misses (no macromodel characterized twice) and print stdout
# bit-identical to the first.
cache-smoke:
	sh scripts/cache_smoke.sh

# Crash-only daemon gate: three jobs served under deterministic fault
# injection, daemon SIGKILLed mid-shard, restarted, drained with
# SIGTERM; every committed result must be bit-identical to a clean
# direct `lcsim run` of the same spec.
daemon-smoke:
	sh scripts/daemon_smoke.sh

fmt:
	gofmt -l -w .
