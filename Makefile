GO ?= go

.PHONY: check vet build test race bench fmt

# Full CI gate: vet, build, race-enabled tests, paper benchmarks.
check: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every paper table/figure benchmark (smoke, not timing).
bench:
	$(GO) test -run Bench -bench . -benchtime 1x -count=1 .

fmt:
	gofmt -l -w .
