// Bus analysis: statistical crosstalk-aware delay analysis of a coupled
// three-line bus under manufacturing variations — the workload class the
// paper's introduction motivates (signal integrity on DSM interconnect).
//
// The victim switches while both neighbours switch the opposite way; wire
// geometry (W, T, S, H, ρ) varies with the published 3σ tolerances. The
// variational ROM library is characterized once; each of the 60 Latin
// Hypercube samples costs one cheap linear-centric transient.
//
//	go run ./examples/busanalysis
package main

import (
	"fmt"
	"log"

	"lcsim/internal/circuit"
	"lcsim/internal/device"
	"lcsim/internal/interconnect"
	"lcsim/internal/stat"
	"lcsim/internal/teta"
)

func main() {
	tech := device.Tech180
	const lengthUm = 150

	bus := interconnect.BuildBus(interconnect.Wire180, 3, lengthUm, 1, true)
	nl := bus.Netlist
	nl.MarkPort(bus.In[1])  // victim near end
	nl.MarkPort(bus.In[0])  // aggressor A
	nl.MarkPort(bus.In[2])  // aggressor B
	nl.MarkPort(bus.Out[1]) // victim far end (probe)
	nl.AddC("Crcv", bus.Out[1], "0", circuit.V(4e-15))

	stage, err := teta.BuildStage(nl, []teta.DriverSpec{
		{Name: "victim", Cell: device.INV, Drive: 4, Port: 0},
		{Name: "aggrA", Cell: device.INV, Drive: 6, Port: 1},
		{Name: "aggrB", Cell: device.INV, Drive: 6, Port: 2},
	}, teta.Config{Tech: tech, DT: 4e-12, TStop: 2.5e-9, Order: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bus: 3 × %d µm coupled lines, %d linear elements, ROM order %d\n",
		lengthUm, stage.BuildStats.LoadElements, stage.BuildStats.ROMOrder)

	vdd := tech.VDD
	inputs := [][]circuit.Waveform{
		{circuit.SatRamp{V0: 0, V1: vdd, Start: 0.3e-9, Slew: 0.12e-9}},  // victim in rises -> out falls
		{circuit.SatRamp{V0: vdd, V1: 0, Start: 0.35e-9, Slew: 0.12e-9}}, // aggressors oppose
		{circuit.SatRamp{V0: vdd, V1: 0, Start: 0.35e-9, Slew: 0.12e-9}},
	}

	const n = 60
	rng := stat.NewRNG(7)
	cube := stat.LatinHypercube(rng, n, len(interconnect.WireParams))
	delays := make([]float64, 0, n)
	for _, row := range cube {
		w := map[string]float64{}
		for j, p := range interconnect.WireParams {
			w[p] = stat.Uniform{Lo: -1, Hi: 1}.Quantile(row[j])
		}
		res, err := stage.Run(teta.RunSpec{W: w, Inputs: inputs})
		if err != nil {
			log.Fatal(err)
		}
		wf, err := res.PortWaveform(3)
		if err != nil {
			log.Fatal(err)
		}
		cross := wf.CrossTime(vdd/2, -1)
		delays = append(delays, cross-0.36e-9)
	}
	s := stat.Summarize(delays)
	fmt.Printf("victim delay over %d samples: mean %.2f ps, std %.2f ps, [%.2f, %.2f] ps\n",
		n, s.Mean*1e12, s.Std*1e12, s.Min*1e12, s.Max*1e12)
	fmt.Println(stat.NewHistogram(delays, 10).Render(40, func(v float64) string {
		return fmt.Sprintf("%7.1f ps", v*1e12)
	}))
	// Quiet-aggressor reference: how much of the spread is coupling?
	quiet := [][]circuit.Waveform{
		inputs[0],
		{circuit.DC(vdd)},
		{circuit.DC(vdd)},
	}
	res, err := stage.Run(teta.RunSpec{Inputs: quiet})
	if err != nil {
		log.Fatal(err)
	}
	wf, _ := res.PortWaveform(3)
	base := wf.CrossTime(vdd/2, -1) - 0.36e-9
	fmt.Printf("nominal delay with quiet aggressors: %.2f ps (coupling penalty at nominal: %.2f ps)\n",
		base*1e12, (s.Median-base)*1e12)
}
