// Yield curve: sweep the cycle-time budget of a critical path and report
// the timing yield from both statistical views — the GA normal model and
// the MC empirical distribution, with a bootstrap confidence interval on
// the MC estimate (the Gattiker-style timing-yield question the paper
// cites as [13]).
//
//	go run ./examples/yieldcurve
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"lcsim/internal/core"
	"lcsim/internal/device"
	"lcsim/internal/stat"
)

func main() {
	tech := device.Tech180
	path, err := core.BuildChain(core.ChainSpec{
		Cells:        []string{"INV", "NAND2", "AOI21", "NOR2", "INV"},
		Drive:        2,
		ElemsBetween: 30,
		WireLengthUm: 15,
		Tech:         tech,
		DT:           4e-12,
		TStop:        1.6e-9,
		Order:        4,
	})
	if err != nil {
		log.Fatal(err)
	}
	sources := core.DeviceSources(tech, 0.33, 0.33)
	ga, err := path.GradientAnalysis(core.GAConfig{Sources: sources})
	if err != nil {
		log.Fatal(err)
	}
	mc, err := path.MonteCarloCtx(context.Background(), core.MCConfig{
		N: 100, Sources: sources, KeepSamples: true,
		RunConfig: core.RunConfig{Seed: 7, Workers: -1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path: GA mean %.1f ps σ %.2f ps | MC mean %.1f ps σ %.2f ps\n\n",
		ga.Mean*1e12, ga.Std*1e12, mc.Summary.Mean*1e12, mc.Summary.Std*1e12)

	fmt.Printf("%-12s %-10s %-10s %-22s\n", "budget(ps)", "GA yield", "MC yield", "MC mean 95% CI (ps)")
	lo := mc.Summary.Mean - 3*mc.Summary.Std
	hi := mc.Summary.Mean + 4*mc.Summary.Std
	for b := lo; b <= hi; b += (hi - lo) / 10 {
		y := core.Yield(b, ga, mc)
		ciLo, ciHi := stat.BootstrapCI(mc.Delays, stat.Mean, 300, 0.95, 13)
		bar := strings.Repeat("#", int(y.MCYield*24))
		fmt.Printf("%-12.1f %-10.4f %-10.4f [%6.1f, %6.1f]  %s\n",
			b*1e12, y.GAYield, y.MCYield, ciLo*1e12, ciHi*1e12, bar)
	}
	fmt.Println("\nThe GA curve is the normal CDF implied by eq. (24); MC is the empirical")
	fmt.Println("fraction of passing samples. They agree in the bulk and diverge in the")
	fmt.Println("tails, where the first-order model misses distribution skew.")
}
