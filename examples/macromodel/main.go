// Macromodel: the variational reduced-order modeling pipeline on its own —
// parse a netlist with variational elements, build the pre-characterized
// library (Table 1 "Construction"), evaluate it across the parameter
// range, watch the stability of the pole set degrade, and repair it with
// the stability filter (Table 1 "Evaluation").
//
//	go run ./examples/macromodel
package main

import (
	"fmt"
	"log"

	"lcsim/internal/circuit"
	"lcsim/internal/mor"
	"lcsim/internal/poleres"
)

const netlist = `
* A two-port RC tree whose first-segment values drift with parameter "geo"
R1  in   n1  50  VAR(geo=25)
C1  n1   0   0.5p VAR(geo=0.25p)
R2  n1   n2  80
C2  n2   0   0.4p
R3  n2   out 60  VAR(geo=30)
C3  out  0   0.6p VAR(geo=0.3p)
CC1 n1   out 0.2p
.PORT in out
`

func main() {
	nl, err := circuit.ParseNetlistString(netlist)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := circuit.AssembleVariational(nl)
	if err != nil {
		log.Fatal(err)
	}
	// A driver conductance on each port (the chord G_SC of eq. 12).
	if err := sys.SetPortConductance([]float64{5e-3, 5e-3}); err != nil {
		log.Fatal(err)
	}
	lib, err := mor.BuildVariational(sys, mor.BuildOptions{Order: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library: %d ports + %d internal states, parameters %v\n\n",
		lib.Np, lib.Q-lib.Np, lib.Params)

	fmt.Printf("%-8s %-10s %-14s %-14s %-12s\n", "geo", "stable?", "worst Re(p)", "Z11(0) raw", "Z11(0) fixed")
	for _, g := range []float64{-1, -0.5, 0, 0.5, 1, 1.5, 2} {
		rom := lib.At(map[string]float64{"geo": g})
		pr, err := poleres.Extract(rom)
		if err != nil {
			fmt.Printf("%-8.2f extraction failed: %v\n", g, err)
			continue
		}
		worst := 0.0
		for _, p := range pr.UnstablePoles() {
			if real(p) > worst {
				worst = real(p)
			}
		}
		st, _ := pr.StabilizeShift()
		stable := "yes"
		if worst > 0 {
			stable = "NO"
		}
		fmt.Printf("%-8.2f %-10s %-14.4g %-14.6g %-12.6g\n",
			g, stable, worst, pr.DCZ().At(0, 0), st.DCZ().At(0, 0))
	}
	fmt.Println("\npoles of the stabilized model at geo = 1.5:")
	rom := lib.At(map[string]float64{"geo": 1.5})
	pr, err := poleres.Extract(rom)
	if err != nil {
		log.Fatal(err)
	}
	st, rep := pr.StabilizeShift()
	for _, p := range st.Poles {
		fmt.Printf("  %14.6g %+14.6gi\n", real(p), imag(p))
	}
	if len(rep.Removed) > 0 {
		fmt.Printf("removed %d unstable poles; DC preserved exactly\n", len(rep.Removed))
	}
}
