// Quickstart: simulate one logic stage — an inverter driving 100 µm of
// minimum-width wire into a receiver — with the linear-centric TETA engine
// and cross-check the waveform against the Newton (SPICE-style) baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lcsim/internal/circuit"
	"lcsim/internal/device"
	"lcsim/internal/interconnect"
	"lcsim/internal/spice"
	"lcsim/internal/teta"
)

func main() {
	tech := device.Tech180
	// 1. Build the linear load: a 100 µm RC line (1 segment per µm), the
	//    near end driven, the far end probed and loaded by a receiver gate.
	load := circuit.New()
	far := interconnect.AddLine(load, interconnect.Wire180, "near", "w", 100, 1, false)
	load.MarkPort("near")
	load.MarkPort(far)
	load.AddC("Crcv", far, "0", circuit.V(2e-15))

	// 2. Characterize the stage: chord models for the driver, the chord
	//    output conductance folded into the load, PACT/PRIMA reduction.
	cfg := teta.Config{Tech: tech, DT: 2e-12, TStop: 2e-9, Order: 6}
	stage, err := teta.BuildStage(load, []teta.DriverSpec{
		{Name: "drv", Cell: device.INV, Drive: 4, Port: 0},
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage: %d-node load, %d linear elements, reduced to order %d\n",
		stage.BuildStats.LoadNodes, stage.BuildStats.LoadElements, stage.BuildStats.ROMOrder)

	// 3. Simulate a rising input edge.
	in := circuit.SatRamp{V0: 0, V1: tech.VDD, Start: 0.3e-9, Slew: 0.1e-9}
	res, err := stage.Run(teta.RunSpec{Inputs: [][]circuit.Waveform{{in}}})
	if err != nil {
		log.Fatal(err)
	}
	wf, err := res.PortWaveform(1)
	if err != nil {
		log.Fatal(err)
	}
	cross, slew := wf.MeasureSatRamp(0, tech.VDD, -1)
	fmt.Printf("TETA : far-end 50%% fall at %.2f ps, slew %.2f ps (%d SC iterations over %d steps)\n",
		cross*1e12, slew*1e12, res.Stats.SCIterations, res.Stats.Steps)

	// 4. Same circuit in the Newton baseline, through the reusable
	//    transistor-level stage harness (the replica the spice-golden
	//    engine runs per Monte-Carlo sample). The load builder returns a
	//    fresh netlist per evaluation; node names are deterministic, so
	//    the probe name from step 1 carries over.
	h, err := spice.NewStageHarness(spice.StageSpec{
		Tech:    tech,
		Drivers: []spice.HarnessDriver{{Name: "drv", Cell: device.INV, Drive: 4, Out: "near"}},
		BuildLoad: func() (*circuit.Netlist, error) {
			nl := circuit.New()
			f := interconnect.AddLine(nl, interconnect.Wire180, "near", "w", 100, 1, false)
			nl.AddC("Crcv", f, "0", circuit.V(2e-15))
			return nl, nil
		},
		Probe: far,
		DT:    cfg.DT, TStop: cfg.TStop,
	})
	if err != nil {
		log.Fatal(err)
	}
	rw, stats, err := h.Eval(nil, 0, 0, [][]circuit.Waveform{{in}})
	if err != nil {
		log.Fatal(err)
	}
	rc, rs := rw.MeasureSatRamp(0, tech.VDD, -1)
	fmt.Printf("SPICE: far-end 50%% fall at %.2f ps, slew %.2f ps (%d LU factorizations)\n",
		rc*1e12, rs*1e12, stats.LUFactorizations)
	fmt.Printf("crossing agreement: %.2f ps\n", (cross-rc)*1e12)
}
