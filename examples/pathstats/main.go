// Path statistics: statistical timing of a critical path — the paper's
// §4.3 methodology end to end. A seven-stage path through the cell
// library with interconnect between stages is analyzed under device
// (ΔL, ΔVT) and wire variations by both methods:
//
//   - Monte-Carlo: full stage-by-stage waveform propagation per sample;
//
//   - Gradient Analysis: nominal waveform plus sensitivity propagation
//     (eq. 24/31), a handful of simulations per stage.
//
//     go run ./examples/pathstats
package main

import (
	"context"
	"fmt"
	"log"

	"lcsim/internal/core"
	"lcsim/internal/device"
	"lcsim/internal/runner"
	"lcsim/internal/stat"
)

func main() {
	tech := device.Tech180
	path, err := core.BuildChain(core.ChainSpec{
		Cells:        []string{"INV", "NAND2", "NOR2", "AOI21", "NAND3", "OAI21", "INV"},
		Drive:        2,
		ElemsBetween: 40,
		WireLengthUm: 20,
		Variational:  true,
		Tech:         tech,
		DT:           4e-12,
		TStop:        1.6e-9,
		Order:        4,
	})
	if err != nil {
		log.Fatal(err)
	}
	sources := append(core.DeviceSources(tech, 0.33, 0.33), core.WireSources(0.33)...)
	fmt.Printf("path: 7 stages, %d variation sources\n", len(sources))

	ga, err := path.GradientAnalysis(core.GAConfig{Sources: sources})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GA : mean %.2f ps, σ %.2f ps  (%d stage simulations)\n",
		ga.Mean*1e12, ga.Std*1e12, ga.Simulations)
	fmt.Println("     sensitivities (ps per source σ... natural units):")
	for _, s := range sources {
		fmt.Printf("       %-10s dD/dw = %+.4g, contribution σ = %.3f ps\n",
			s.Name, ga.Sensitivity[s.Name], abs(ga.Sensitivity[s.Name])*s.Sigma*1e12)
	}

	// Monte-Carlo on the parallel runtime: Workers -1 uses every core,
	// and the result is bit-identical to a serial run at the same seed.
	metrics := &runner.Metrics{}
	mc, err := path.MonteCarloCtx(context.Background(), core.MCConfig{
		N: 80, Sources: sources,
		Sampler: core.SamplerLHS, KeepSamples: true,
		RunConfig: core.RunConfig{Seed: 11, Workers: -1, Metrics: metrics},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MC : mean %.2f ps, σ %.2f ps  (%d path simulations, %d SC iterations total)\n",
		mc.Summary.Mean*1e12, mc.Summary.Std*1e12, mc.Summary.N, mc.TotalSC)
	fmt.Println(stat.NewHistogram(mc.Delays, 12).Render(40, func(v float64) string {
		return fmt.Sprintf("%8.1f ps", v*1e12)
	}))
	fmt.Printf("GA/MC σ ratio: %.2f (GA trusts a first-order model; MC is the reference)\n",
		ga.Std/mc.Summary.Std)
	cost := metrics.Snapshot()
	fmt.Printf("cost: %d stage evals, %d SC iterations, %d linear solves\n",
		cost.StageEvals, cost.SCIterations, cost.LinearSolves)

	// The same run without KeepSamples streams: Welford + P² accumulators
	// replace the per-sample arrays, so N can scale to millions. The
	// streamed mean/σ match the materialized ones to ~1e-9 relative.
	stream, err := path.MonteCarloCtx(context.Background(), core.MCConfig{
		N: 80, Sources: sources, Sampler: core.SamplerLHS,
		RunConfig: core.RunConfig{Seed: 11, Workers: -1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming MC: mean %.2f ps, σ %.2f ps, median≈%.2f ps (no per-sample storage)\n",
		stream.Summary.Mean*1e12, stream.Summary.Std*1e12, stream.Summary.Median*1e12)

	// Every statistical driver dispatches through the core.Engine registry;
	// naming an engine re-runs the identical analysis on another backend
	// (per-sample exact extraction here; spice-golden would run the full
	// transistor-level Newton transient per sample).
	fmt.Printf("engines: %v\n", core.EngineNames())
	exact, err := path.MonteCarloCtx(context.Background(), core.MCConfig{
		N: 20, Sources: sources, Sampler: core.SamplerLHS,
		RunConfig: core.RunConfig{Seed: 11, Workers: -1, Engine: core.EngineTetaExact},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("teta-exact re-run (20 samples): mean %.2f ps (cross-engine consistency check)\n",
		exact.Summary.Mean*1e12)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
