// Clock skew: statistical skew between two branches of a buffered clock
// distribution — the application that motivated the variational
// interconnect models the paper builds on (Liu et al., DAC 2000: "Impact
// of interconnect variations on the clock skew of a gigahertz
// microprocessor").
//
// Two buffer chains drive two leaves through different wire lengths.
// Global wire variations affect both branches coherently (they shift
// together); device variations are drawn independently per branch. Skew =
// arrival(A) − arrival(B).
//
//	go run ./examples/clockskew
package main

import (
	"context"
	"fmt"
	"log"

	"lcsim/internal/core"
	"lcsim/internal/device"
	"lcsim/internal/stat"
)

func buildBranch(wireUm float64, stages int) (*core.Path, error) {
	cells := make([]string, stages)
	for i := range cells {
		cells[i] = "BUF"
	}
	return core.BuildChain(core.ChainSpec{
		Cells:        cells,
		Drive:        4,
		ElemsBetween: int(2 * wireUm), // 1 segment/µm → 2 elements/µm
		WireLengthUm: wireUm,
		Variational:  true,
		Tech:         device.Tech180,
		DT:           4e-12,
		TStop:        2.5e-9,
		Order:        4,
	})
}

func main() {
	// Branch A: 3 buffers × 120 µm; branch B: 3 buffers × 100 µm — an
	// intentionally skewed tree.
	branchA, err := buildBranch(120, 3)
	if err != nil {
		log.Fatal(err)
	}
	branchB, err := buildBranch(100, 3)
	if err != nil {
		log.Fatal(err)
	}
	tech := device.Tech180

	pair := &core.PathPair{
		A: branchA, B: branchB,
		Shared:       core.UniformWireSources(),
		IndependentA: core.DeviceSources(tech, 0.33, 0.33),
		IndependentB: core.DeviceSources(tech, 0.33, 0.33),
	}
	res, err := pair.MonteCarloSkewCtx(context.Background(), core.SkewConfig{
		N: 60, RunConfig: core.RunConfig{Seed: 2026, Workers: -1},
	})
	if err != nil {
		log.Fatal(err)
	}
	sa, sb, sk := res.ArrivalA, res.ArrivalB, res.Skew
	fmt.Printf("branch A arrival: mean %.1f ps, σ %.2f ps\n", sa.Mean*1e12, sa.Std*1e12)
	fmt.Printf("branch B arrival: mean %.1f ps, σ %.2f ps\n", sb.Mean*1e12, sb.Std*1e12)
	fmt.Printf("skew A−B       : mean %.2f ps, σ %.2f ps, range [%.2f, %.2f] ps\n",
		sk.Mean*1e12, sk.Std*1e12, sk.Min*1e12, sk.Max*1e12)
	fmt.Println()
	fmt.Println(stat.NewHistogram(res.Skews, 10).Render(40, func(v float64) string {
		return fmt.Sprintf("%7.2f ps", v*1e12)
	}))
	// Because wire variations are shared, skew σ is smaller than the
	// root-sum-square of the branch σs — the correlation the variational
	// models capture and per-corner analysis misses.
	fmt.Printf("skew σ %.2f ps vs uncorrelated-branch RSS %.2f ps: shared wire variation cancels in skew\n",
		sk.Std*1e12, res.RSS*1e12)
}
