module lcsim

go 1.22
