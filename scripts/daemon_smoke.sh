#!/bin/sh
# daemon_smoke.sh — crash-only daemon integration gate (the
# `daemon-smoke` leg of `make check`).
#
# Enqueues three path-MC jobs into an lcsimd queue, serves them with the
# deterministic fault-injection schedule armed (torn journal writes,
# fsync/rename failures, read corruption, scripted engine failures),
# SIGKILLs the daemon once a shard journal shows a durable cut, restarts
# it over the same queue, waits for every job to complete, drains the
# restarted daemon with SIGTERM, and finally requires each committed
# result to be bit-identical (driver, spec hash, summary, failure
# report) to a clean direct `lcsim run` of the same spec.
set -eu

workdir=$(mktemp -d)
pid=""
trap 'if [ -n "${pid:-}" ]; then kill -9 "$pid" 2>/dev/null || true; fi; rm -rf "$workdir"' EXIT

lcsim="$workdir/lcsim"
lcsimd="$workdir/lcsimd"
go build -o "$lcsim" ./cmd/lcsim
go build -o "$lcsimd" ./cmd/lcsimd

queue="$workdir/queue"
fault="seed=7,max=40,write.torn=0.05,sync.err=0.04,rename.err=0.04,read.corrupt=0.03,engine.fail=0.01"

die() {
    echo "daemon-smoke: $1" >&2
    [ -f "$workdir/daemon.log" ] && cat "$workdir/daemon.log" >&2
    exit 1
}

# Three distinct statistical runs (different seeds), specs dumped by the
# classic CLI — exactly what an operator would enqueue.
ids=""
for seed in 101 102 103; do
    "$lcsim" path -cells INV,NAND2,INV -mc 60 -seed "$seed" -dump-spec > "$workdir/spec_$seed.json"
    id=$("$lcsimd" enqueue -queue "$queue" -spec "$workdir/spec_$seed.json")
    ids="$ids $id"
done

# Enqueue is content-addressed and idempotent: the same spec maps to the
# same job id.
again=$("$lcsimd" enqueue -queue "$queue" -spec "$workdir/spec_101.json")
first=$(echo "$ids" | awk '{print $1}')
[ "$again" = "$first" ] || die "enqueue not idempotent: $again vs $first"

serve() {
    "$lcsimd" serve -queue "$queue" -model-cache "$workdir/cache" \
        -shard 8 -every 1 -poll 100ms -backoff 10ms -max-attempts 20 \
        -fault "$fault" >> "$workdir/daemon.log" 2>&1 &
    pid=$!
}

# First daemon lifetime: killed hard (SIGKILL — no drain, no cleanup)
# as soon as any job has a durable journal cut, i.e. mid-shard with the
# fault schedule firing.
serve
i=0
found=""
while [ -z "$found" ]; do
    for id in $ids; do
        if [ -f "$queue/jobs/$id/journal.ck" ]; then
            found=$id
            break
        fi
    done
    i=$((i + 1))
    [ "$i" -ge 1200 ] && die "no shard journal appeared"
    sleep 0.05
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# Restarted daemon over the same queue: recovery is just "read the
# journals and keep going". Every job must reach done.
serve
"$lcsimd" wait -queue "$queue" -timeout 300s || die "jobs did not complete after restart"

# Graceful drain: SIGTERM must exit 0 once the executors unwind.
kill -TERM "$pid"
wait "$pid" || die "drain exited non-zero"
pid=""

# Bit-identity: each daemon result equals a clean direct run (no
# daemon, no faults, fresh model cache) of the same spec.
n=0
for seed in 101 102 103; do
    n=$((n + 1))
    id=$(echo "$ids" | awk -v n="$n" '{print $n}')
    "$lcsim" run -spec "$workdir/spec_$seed.json" -model-cache "$workdir/cache-direct" \
        -result "$workdir/direct_$seed.json" > /dev/null 2>&1
    "$lcsimd" cmp "$queue/jobs/$id/result.json" "$workdir/direct_$seed.json" \
        || die "job $id differs from the direct run"
done
echo "daemon-smoke: OK (SIGKILL mid-shard under fault injection, restarted, drained; 3/3 results bit-identical)"
