#!/bin/sh
# checkpoint_resume.sh — crash-safety integration gate (the
# `checkpoint-resume` leg of `make check`).
#
# Runs a 200-sample Monte-Carlo sweep with a checkpoint journal, SIGKILLs
# it mid-sweep, resumes from the journal, and requires the final summary
# (mean, sigma, histogram, failure table) to match an uninterrupted
# reference run exactly. Only the cost-counter lines are excluded from
# the diff: worker-side counters (stage evals, SC iterations, solves) may
# legitimately include in-flight work beyond the checkpoint cut, and the
# resumed run prints an extra "resumed:" note — neither is part of the
# bit-identity contract.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

bin="$workdir/lcsim"
go build -o "$bin" ./cmd/lcsim

args="path -cells INV,NAND2,INV -mc 200 -seed 42"
ck="$workdir/mc.ckpt"

# strip_cost drops the cost-counter block, keeping the statistics.
strip_cost() {
    grep -v -E '^cost:|^ +[0-9]+ skipped,|^ +resumed:' "$1"
}

# Uninterrupted reference run.
$bin $args -workers 2 > "$workdir/ref.out"

# Journaled run, killed hard once the journal exists (i.e. mid-sweep or
# later — if the run managed to finish first, the resume below simply
# restores a completed prefix and evaluates nothing, which must produce
# the same output; the final unconditional flush makes this race-free).
$bin $args -workers 2 -checkpoint "$ck" -checkpoint-every 5 > "$workdir/victim.out" 2>&1 &
pid=$!
i=0
while [ ! -f "$ck" ]; do
    i=$((i + 1))
    if [ "$i" -ge 600 ]; then
        echo "checkpoint-resume: journal never appeared; victim output:" >&2
        cat "$workdir/victim.out" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# Resume from the journal (different worker count on purpose: the
# fingerprint excludes it) and compare against the reference.
$bin $args -workers 4 -checkpoint "$ck" -resume > "$workdir/resumed.out"

if ! grep -q 'resumed:' "$workdir/resumed.out"; then
    echo "checkpoint-resume: the resumed run restored no samples" >&2
    exit 1
fi
strip_cost "$workdir/ref.out" > "$workdir/ref.cmp"
strip_cost "$workdir/resumed.out" > "$workdir/resumed.cmp"
if ! diff -u "$workdir/ref.cmp" "$workdir/resumed.cmp"; then
    echo "checkpoint-resume: resumed summary differs from the uninterrupted reference" >&2
    exit 1
fi
echo "checkpoint-resume: OK (killed mid-sweep, resumed bit-identical)"
