#!/bin/sh
# ssta_smoke.sh — full-chip statistical STA gate (the `ssta-smoke` leg
# of `make check`).
#
# Two assertions on the `lcsim sta -ssta` driver:
#   1. Statistical agreement: on s27, the block-level SSTA propagation
#      (characterize-once macromodels + Clark's max) must agree with a
#      5000-sample brute-force Monte-Carlo reference on mean and sigma
#      at every sink and at the chip max within 5% (`-check 0.05` makes
#      the driver itself exit non-zero on disagreement).
#   2. Determinism: the same analysis at 1 worker and 4 workers must
#      print bit-identical statistical output (only the cost-counter
#      line may differ — worker scheduling changes nothing else).
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

bin="$workdir/lcsim"
go build -o "$bin" ./cmd/lcsim

# 1. SSTA vs brute-force MC: the driver exits 1 if any sink's mean or
# sigma deviates beyond the tolerance.
if ! $bin sta -bench s27 -ssta -budget 300p -mc 5000 -check 0.05 -workers -1 \
        > "$workdir/agree.out" 2>&1; then
    echo "ssta-smoke: SSTA disagrees with the 5k brute-force MC reference:" >&2
    cat "$workdir/agree.out" >&2
    exit 1
fi
grep 'check: PASS' "$workdir/agree.out"

# 2. Worker-count invariance on a smaller population. Only wall-clock
# noise is excluded from the diff: the cost-counter line (scheduling
# dependent) and the characterization wall time on the ssta line — the
# block/cache-hit counts and every statistic stay in.
strip_wall() {
    grep -v '^cost:' | sed 's/, [^,]* characterization$//'
}
args="sta -bench s27 -ssta -budget 300p -mc 600 -seed 9"
$bin $args -workers 1 | strip_wall > "$workdir/w1.out"
$bin $args -workers 4 | strip_wall > "$workdir/w4.out"
if ! diff -u "$workdir/w1.out" "$workdir/w4.out"; then
    echo "ssta-smoke: statistical output differs between 1 and 4 workers" >&2
    exit 1
fi
echo "ssta-smoke: OK (within 5% of brute-force MC; bit-identical across worker counts)"
