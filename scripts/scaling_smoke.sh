#!/bin/sh
# scaling_smoke.sh — multi-core scaling gate (the `scaling-smoke` leg of
# `make check`).
#
# Runs the `lcsim bench` worker sweep with -min-speedup, which fails the
# benchmark unless the 4-worker row beats the 1-worker row by the given
# factor. The assertion only means something on a host that can actually
# run 4 workers in parallel, so on fewer than 4 CPUs the gate skips
# itself explicitly (exit 0) instead of asserting what the hardware
# cannot show — the curve itself is still measured and recorded by
# `make bench-json` on every box.
set -eu

cpus=$( (nproc || getconf _NPROCESSORS_ONLN) 2>/dev/null || echo 1)
if [ "$cpus" -lt 4 ]; then
    echo "scaling-smoke: SKIP (only $cpus CPU(s); need >= 4 to assert parallel speedup)"
    exit 0
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go run ./cmd/lcsim bench -samples 2000 -min-speedup 1.5 -out "$workdir/bench.json"
echo "scaling-smoke: OK (4 workers >= 1.5x over 1 worker)"
