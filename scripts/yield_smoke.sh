#!/bin/sh
# yield_smoke.sh — importance-sampling yield gate (the `yield-smoke` leg
# of `make check`).
#
# Three assertions on the `lcsim yield` driver:
#   1. Statistical agreement: a small IS run at a 2.5σ delay budget must
#      land within the combined 95% CI of a 20k-sample plain-MC
#      reference of the same failure probability (`-check-mc` makes the
#      driver itself exit non-zero on disagreement).
#   2. Crash safety: an IS run with a checkpoint journal, SIGKILLed
#      mid-sweep and resumed at a different worker count, must
#      reproduce the uninterrupted run's estimate bit for bit.
#   3. The resumed run must actually restore samples from the journal
#      (otherwise assertion 2 just re-ran the sweep).
# Only the cost-counter lines are excluded from the diff: worker-side
# counters may include in-flight work beyond the checkpoint cut, and the
# resumed run prints an extra "resumed:" note.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

bin="$workdir/lcsim"
go build -o "$bin" ./cmd/lcsim

args="yield -cells INV,NAND2,INV -elems 6 -budget-sigma 2.5 -n 800 -seed 42"
ck="$workdir/is.ckpt"

# strip_cost drops the evaluation-cost counter block, keeping the
# statistical lines (the IS accounting line spells "cost :" and stays).
strip_cost() {
    grep -v -E '^cost: |^ +[0-9]+ skipped,|^ +resumed:' "$1"
}

# 1. IS vs plain MC: the driver exits 1 if the two estimates disagree
# beyond the combined 95% CI.
if ! $bin $args -check-mc 20000 > "$workdir/agree.out" 2>&1; then
    echo "yield-smoke: IS disagrees with the 20k plain-MC reference:" >&2
    cat "$workdir/agree.out" >&2
    exit 1
fi
grep 'MC   :' "$workdir/agree.out"

# 2. Uninterrupted IS reference run.
$bin $args -workers 2 > "$workdir/ref.out"

# Journaled run, killed hard once the journal exists (if the run managed
# to finish first, the resume below restores a completed prefix and
# evaluates nothing, which must still produce the same output).
$bin $args -workers 2 -checkpoint "$ck" -checkpoint-every 50 > "$workdir/victim.out" 2>&1 &
pid=$!
i=0
while [ ! -f "$ck" ]; do
    i=$((i + 1))
    if [ "$i" -ge 600 ]; then
        echo "yield-smoke: journal never appeared; victim output:" >&2
        cat "$workdir/victim.out" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# Resume at a different worker count (the fingerprint excludes it) and
# compare against the uninterrupted reference.
$bin $args -workers 4 -checkpoint "$ck" -resume > "$workdir/resumed.out"

if ! grep -q 'resumed:' "$workdir/resumed.out"; then
    echo "yield-smoke: the resumed run restored no samples" >&2
    exit 1
fi
strip_cost "$workdir/ref.out" > "$workdir/ref.cmp"
strip_cost "$workdir/resumed.out" > "$workdir/resumed.cmp"
if ! diff -u "$workdir/ref.cmp" "$workdir/resumed.cmp"; then
    echo "yield-smoke: resumed estimate differs from the uninterrupted reference" >&2
    exit 1
fi
echo "yield-smoke: OK (inside the plain-MC CI; killed mid-sweep, resumed bit-identical)"
