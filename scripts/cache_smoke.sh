#!/bin/sh
# cache_smoke.sh — cross-run model-cache gate (the `cache-smoke` leg of
# `make check`).
#
# Two assertions on the `-model-cache` store, for both a path sweep and
# the full-chip SSTA driver:
#   1. Warm runs are warm: the second run over the same cache directory
#      must report zero misses on stderr — zero macromodel
#      characterizations ran; every stage model came from disk.
#   2. The cache is invisible in the results: the warm run's stdout must
#      be bit-identical to the cold run's (the store serializes every
#      float at full width, so a cached model evaluates exactly like a
#      fresh extraction).
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

bin="$workdir/lcsim"
go build -o "$bin" ./cmd/lcsim

# strip_wall drops the one wall-clock field in the sta output (the
# characterization time on the ssta line); everything statistical stays.
strip_wall() {
    sed 's/, [^,]* characterization$//'
}

check_warm() {
    name=$1
    shift
    cache="$workdir/$name.cache"
    "$bin" "$@" -model-cache "$cache" > "$workdir/$name.cold.raw" 2> "$workdir/$name.cold.err"
    "$bin" "$@" -model-cache "$cache" > "$workdir/$name.warm.raw" 2> "$workdir/$name.warm.err"

    if ! grep '^model-cache: ' "$workdir/$name.warm.err" | grep -q ' 0 misses'; then
        echo "cache-smoke: $name: warm run still characterized macromodels:" >&2
        grep '^model-cache: ' "$workdir/$name.warm.err" >&2 || cat "$workdir/$name.warm.err" >&2
        exit 1
    fi
    if grep '^model-cache: ' "$workdir/$name.warm.err" | grep -q '^model-cache: 0 hits'; then
        echo "cache-smoke: $name: warm run hit nothing — the store is not being consulted:" >&2
        grep '^model-cache: ' "$workdir/$name.warm.err" >&2
        exit 1
    fi
    strip_wall < "$workdir/$name.cold.raw" > "$workdir/$name.cold"
    strip_wall < "$workdir/$name.warm.raw" > "$workdir/$name.warm"
    if ! diff -u "$workdir/$name.cold" "$workdir/$name.warm"; then
        echo "cache-smoke: $name: warm output differs from cold — the cache changed a result" >&2
        exit 1
    fi
}

check_warm path path -cells INV,NAND2,INV -mc 50 -seed 3 -workers 1
check_warm ssta sta -bench s27 -ssta -budget 300p -workers 1

echo "cache-smoke: OK (warm reruns: zero characterizations, bit-identical output)"
