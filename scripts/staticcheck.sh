#!/bin/sh
# staticcheck.sh — the `staticcheck` leg of `make check`.
#
# Runs honnef.co/go/tools staticcheck at a pinned version via `go run`,
# so nothing is permanently installed and every machine checks with the
# same tool. The tool is not vendored: on an offline machine (or one
# whose module cache lacks it) the leg degrades to a skip with a notice
# and exit 0 — `make check` must stay runnable in the air-gapped
# container this repo develops in, and `go vet` still covers the basics
# there.
set -eu

TOOL="honnef.co/go/tools/cmd/staticcheck@v0.6.1"

if ! go run "$TOOL" -version >/dev/null 2>&1; then
    echo "staticcheck: $TOOL unavailable (offline / not in the module cache) — skipping"
    exit 0
fi

exec go run "$TOOL" ./...
