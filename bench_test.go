// Package lcsim's root benchmarks regenerate every table and figure of the
// paper's evaluation (via internal/experiments) and run the ablations
// listed in DESIGN.md §6. Workload sizes are scaled down so a full
// `go test -bench=. -benchmem` finishes in minutes; the cmd/example*
// binaries run the paper-sized configurations.
package lcsim

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lcsim/internal/circuit"
	"lcsim/internal/core"
	"lcsim/internal/device"
	"lcsim/internal/experiments"
	"lcsim/internal/interconnect"
	"lcsim/internal/iscas"
	"lcsim/internal/mat"
	"lcsim/internal/mor"
	"lcsim/internal/poleres"
	"lcsim/internal/sparse"
	"lcsim/internal/spice"
	"lcsim/internal/stat"
	"lcsim/internal/teta"
)

// --- Paper artifacts -----------------------------------------------------

// BenchmarkExample1Table3 regenerates the unstable-pole table.
func BenchmarkExample1Table3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(4, []float64{0.05, 0.06, 0.08, 0.09, 0.1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0].NumUnstable == 0 {
			b.Fatal("expected instability")
		}
	}
}

// BenchmarkExample1Figure3 regenerates the waveform-agreement comparison.
func BenchmarkExample1Figure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxErrV*1e3, "maxErr-mV")
	}
}

// BenchmarkExample1Divergence regenerates the §5.1 SPICE failure.
func BenchmarkExample1Divergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunDivergence([]float64{0, 0.1})
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].SPICEOutcome != "diverged" {
			b.Fatal("expected divergence at p=0.1")
		}
	}
}

// BenchmarkExample2Figure5 regenerates the CPU-time comparison (scaled:
// two lengths, 6 samples).
func BenchmarkExample2Figure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure5(experiments.Ex2Options{Samples: 6}, []float64{25, 50}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Speedup, "speedup")
	}
}

// BenchmarkExample2Figure6 regenerates the histogram accuracy comparison.
func BenchmarkExample2Figure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure6(experiments.Ex2Options{Samples: 10}, 40)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanErrPct, "meanErr-%")
	}
}

// BenchmarkExample3Table4 regenerates the speedup table (scaled: s27 only,
// 10 and 100 elements).
func BenchmarkExample3Table4(b *testing.B) {
	set := []iscas.Benchmark{{Name: "s27", Stages: 6, Seed: 27}}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable4(experiments.Ex3Options{Samples: 10}, set, []int{10, 100}, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Speedup, "speedup-500elem-class")
	}
}

// BenchmarkExample3Table5 regenerates the GA-vs-MC statistics (scaled).
func BenchmarkExample3Table5(b *testing.B) {
	set := []iscas.Benchmark{{Name: "s27", Stages: 6, Seed: 27}}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable5(experiments.Ex3Options{Samples: 20, Workers: -1}, set, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].GAStdPs, "GA-std-ps")
		b.ReportMetric(rows[0].MCStdPs, "MC-std-ps")
	}
}

// BenchmarkExample3Figure7 regenerates the histogram pair for s27.
func BenchmarkExample3Figure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure7(experiments.Ex3Options{Samples: 20, Workers: -1},
			iscas.Benchmark{Name: "s27", Stages: 6, Seed: 27}, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GAStd*1e12, "GA-std-ps")
	}
}

// --- Ablations (DESIGN.md §6) --------------------------------------------

// quickStage builds a small reusable stage for ablations.
func quickStage(b *testing.B, cfg teta.Config) *teta.Stage {
	b.Helper()
	load := circuit.New()
	far := interconnect.AddLine(load, interconnect.Wire180, "near", "w", 60, 1, true)
	load.MarkPort("near")
	load.MarkPort(far)
	load.AddC("Crcv", far, "0", circuit.V(2e-15))
	st, err := teta.BuildStage(load, []teta.DriverSpec{{Name: "d", Cell: device.INV, Drive: 4, Port: 0}}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func stageInput(tech *device.ModelSet) [][]circuit.Waveform {
	return [][]circuit.Waveform{{circuit.SatRamp{V0: 0, V1: tech.VDD, Start: 0.3e-9, Slew: 0.1e-9}}}
}

// BenchmarkAblationChord compares the SC iteration count across chord
// policies (DESIGN.md: chord conductance choice).
func BenchmarkAblationChord(b *testing.B) {
	for _, policy := range []teta.ChordPolicy{teta.ChordMax, teta.ChordHalf, teta.ChordSecant} {
		b.Run(policy.String(), func(b *testing.B) {
			cfg := teta.Config{Tech: device.Tech180, DT: 2e-12, TStop: 1.5e-9, Order: 4, Chord: policy}
			st := quickStage(b, cfg)
			in := stageInput(cfg.Tech)
			b.ResetTimer()
			var iters, steps int
			for i := 0; i < b.N; i++ {
				res, err := st.Run(teta.RunSpec{Inputs: in})
				if err != nil {
					b.Fatal(err)
				}
				iters += res.Stats.SCIterations
				steps += res.Stats.Steps
			}
			b.ReportMetric(float64(iters)/float64(steps), "SC-iters/step")
		})
	}
}

// BenchmarkAblationOrder measures accuracy/cost vs ROM order (reference:
// order 10).
func BenchmarkAblationOrder(b *testing.B) {
	ref := quickStage(b, teta.Config{Tech: device.Tech180, DT: 2e-12, TStop: 1.5e-9, Order: 10})
	in := stageInput(device.Tech180)
	refRes, err := ref.Run(teta.RunSpec{Inputs: in})
	if err != nil {
		b.Fatal(err)
	}
	refWf, _ := refRes.PortWaveform(1)
	refCross := refWf.CrossTime(0.9, -1)
	for _, order := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("order%d", order), func(b *testing.B) {
			st := quickStage(b, teta.Config{Tech: device.Tech180, DT: 2e-12, TStop: 1.5e-9, Order: order})
			b.ResetTimer()
			var errPs float64
			for i := 0; i < b.N; i++ {
				res, err := st.Run(teta.RunSpec{Inputs: in})
				if err != nil {
					b.Fatal(err)
				}
				wf, _ := res.PortWaveform(1)
				errPs = (wf.CrossTime(0.9, -1) - refCross) * 1e12
			}
			b.ReportMetric(errPs, "crossErr-ps")
		})
	}
}

// BenchmarkAblationFilter compares the stabilization variants on the
// Example-1 unstable model (β scaling of eqs. 22–23 vs DC shift).
func BenchmarkAblationFilter(b *testing.B) {
	vromStage := func(useBeta bool) (*teta.Stage, [][]circuit.Waveform) {
		load := experiments.BuildExample1Load()
		cfg := teta.Config{Tech: device.Tech600, DT: 20e-12, TStop: 30e-9, Order: 4, Delta: 0.1, UseBetaStab: useBeta}
		st, err := teta.BuildStage(load, []teta.DriverSpec{{Name: "inv", Cell: device.INV, Drive: 2, Port: 0}}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		in := [][]circuit.Waveform{{circuit.SatRamp{V0: 0, V1: 3.3, Start: 2e-9, Slew: 0.5e-9}}}
		return st, in
	}
	for _, variant := range []struct {
		name string
		beta bool
	}{{"shift", false}, {"beta", true}} {
		b.Run(variant.name, func(b *testing.B) {
			st, in := vromStage(variant.beta)
			rs := teta.RunSpec{W: map[string]float64{experiments.Ex1Param: 0.1}, Inputs: in}
			ref, err := st.RunDirect(rs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var maxErr float64
			for i := 0; i < b.N; i++ {
				res, err := st.Run(rs)
				if err != nil {
					b.Fatal(err)
				}
				maxErr = 0
				for k := range res.T {
					if d := res.PortV[0][k] - ref.PortV[0][k]; d > maxErr {
						maxErr = d
					} else if -d > maxErr {
						maxErr = -d
					}
				}
			}
			b.ReportMetric(maxErr*1e3, "maxErr-mV")
		})
	}
}

// BenchmarkAblationLHS compares estimator spread of LHS vs plain MC for
// the mean of a path-delay-like monotone response.
func BenchmarkAblationLHS(b *testing.B) {
	response := func(row []float64) float64 {
		return 100e-12 + 8e-12*row[0] + 5e-12*row[1] - 3e-12*row[2]
	}
	estimate := func(gen func(rng *rand.Rand, n, d int) [][]float64, seed int64) float64 {
		cube := gen(stat.NewRNG(seed), 30, 3)
		acc := 0.0
		for _, r := range cube {
			acc += response(r)
		}
		return acc / float64(len(cube))
	}
	for _, variant := range []struct {
		name string
		gen  func(rng *rand.Rand, n, d int) [][]float64
	}{{"lhs", stat.LatinHypercube}, {"plain", stat.MonteCarloCube}} {
		b.Run(variant.name, func(b *testing.B) {
			var spread float64
			for i := 0; i < b.N; i++ {
				var means []float64
				for s := int64(0); s < 50; s++ {
					means = append(means, estimate(variant.gen, s))
				}
				spread = stat.Std(means)
			}
			b.ReportMetric(spread*1e15, "estimator-std-fs")
		})
	}
}

// BenchmarkAblationSparse compares the sparse circuit LU against dense
// factorization on RC-ladder conductance matrices.
func BenchmarkAblationSparse(b *testing.B) {
	build := func(n int) (*sparse.CSC, *mat.Dense) {
		tr := sparse.NewTriplet(n)
		d := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			g := 1.0/(1+float64(i%7)) + 1e-3
			tr.Add(i, i, g)
			d.Add(i, i, g)
			if i+1 < n {
				g2 := 0.5
				tr.Add(i, i, g2)
				tr.Add(i+1, i+1, g2)
				tr.Add(i, i+1, -g2)
				tr.Add(i+1, i, -g2)
				d.Add(i, i, g2)
				d.Add(i+1, i+1, g2)
				d.Add(i, i+1, -g2)
				d.Add(i+1, i, -g2)
			}
		}
		return tr.Compile(), d
	}
	for _, n := range []int{200, 800} {
		sp, dn := build(n)
		b.Run(fmt.Sprintf("sparse-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sparse.FactorLU(sp, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("dense-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mat.FactorLU(dn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate micro-benchmarks -------------------------------------------

// BenchmarkVariationalROMBuild measures library pre-characterization.
func BenchmarkVariationalROMBuild(b *testing.B) {
	bus := interconnect.BuildBus(interconnect.Wire180, 3, 100, 1, true)
	for _, n := range bus.In {
		bus.Netlist.MarkPort(n)
	}
	sys, err := circuit.AssembleVariational(bus.Netlist)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.SetPortConductance([]float64{1e-2, 1e-2, 1e-2}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mor.BuildVariational(sys, mor.BuildOptions{Order: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkROMEvaluation measures one library evaluation + stabilization —
// the per-sample cost the framework amortizes everything down to.
func BenchmarkROMEvaluation(b *testing.B) {
	bus := interconnect.BuildBus(interconnect.Wire180, 3, 100, 1, true)
	for _, n := range bus.In {
		bus.Netlist.MarkPort(n)
	}
	sys, err := circuit.AssembleVariational(bus.Netlist)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.SetPortConductance([]float64{1e-2, 1e-2, 1e-2}); err != nil {
		b.Fatal(err)
	}
	vrom, err := mor.BuildVariational(sys, mor.BuildOptions{Order: 6})
	if err != nil {
		b.Fatal(err)
	}
	w := map[string]float64{interconnect.ParamW: 0.4, interconnect.ParamT: -0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rom := vrom.At(w)
		pr, err := poleres.Extract(rom)
		if err != nil {
			b.Fatal(err)
		}
		pr.StabilizeShift()
	}
}

// BenchmarkGAvsMCPathCost contrasts the two statistical methods' costs on
// the same path (GA: linear in sources; MC: linear in samples).
func BenchmarkGAvsMCPathCost(b *testing.B) {
	p, err := core.BuildChain(core.ChainSpec{
		Cells: []string{"INV", "NAND2", "INV"}, Drive: 2, ElemsBetween: 10,
		WireLengthUm: 5, Tech: device.Tech180, DT: 4e-12, TStop: 1.6e-9, Order: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	sources := core.DeviceSources(device.Tech180, 0.33, 0.33)
	b.Run("GA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.GradientAnalysis(core.GAConfig{Sources: sources}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MC20", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.MonteCarloCtx(context.Background(), core.MCConfig{N: 20, Sources: sources, RunConfig: core.RunConfig{Seed: 3}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMCWorkers measures the parallel runtime on a 1000-sample
// Monte-Carlo run over a short chain: serial vs all cores, plus an
// explicit wall-clock speedup metric. The serial and parallel summaries
// are bit-identical (same seed ⇒ same plan, ordered streaming sink).
func BenchmarkMCWorkers(b *testing.B) {
	p, err := core.BuildChain(core.ChainSpec{
		Cells: []string{"INV", "INV"}, Drive: 2, ElemsBetween: 4,
		WireLengthUm: 2, Tech: device.Tech180, DT: 4e-12, TStop: 1.6e-9, Order: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	sources := core.DeviceSources(device.Tech180, 0.33, 0.33)
	run := func(b *testing.B, workers int) *core.MCResult {
		res, err := p.MonteCarloCtx(context.Background(), core.MCConfig{
			N: 1000, Sources: sources,
			RunConfig: core.RunConfig{Seed: 3, Workers: workers},
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, 0)
		}
	})
	b.Run("allCores", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, -1)
		}
	})
	b.Run("speedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			serial := run(b, 0)
			ts := time.Since(t0)
			t1 := time.Now()
			par := run(b, -1)
			tp := time.Since(t1)
			if serial.Summary != par.Summary {
				b.Fatal("parallel summary differs from serial")
			}
			b.ReportMetric(ts.Seconds()/tp.Seconds(), "x-speedup")
		}
	})
}

// BenchmarkAblationGAStep studies the Gradient-Analysis finite-difference
// step size (fraction of source σ): too small amplifies simulation noise,
// too large picks up curvature; the σ estimate should be stable across a
// wide middle range.
func BenchmarkAblationGAStep(b *testing.B) {
	p, err := core.BuildChain(core.ChainSpec{
		Cells: []string{"INV", "NAND2"}, Drive: 2, ElemsBetween: 10,
		WireLengthUm: 5, Tech: device.Tech180, DT: 4e-12, TStop: 1.6e-9, Order: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	sources := core.DeviceSources(device.Tech180, 0.33, 0.33)
	for _, step := range []float64{0.1, 0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("step%.1f", step), func(b *testing.B) {
			var sigma float64
			for i := 0; i < b.N; i++ {
				ga, err := p.GradientAnalysis(core.GAConfig{Sources: sources, Step: step})
				if err != nil {
					b.Fatal(err)
				}
				sigma = ga.Std
			}
			b.ReportMetric(sigma*1e12, "GA-std-ps")
		})
	}
}

// BenchmarkSpiceAdaptiveVsFixed contrasts the baseline's two stepping
// modes on an inverter transient with a long quiet tail.
func BenchmarkSpiceAdaptiveVsFixed(b *testing.B) {
	build := func() *circuit.Netlist {
		nl := circuit.New()
		nl.AddV("VDD", "vdd", "0", circuit.DC(1.8))
		nl.AddV("VIN", "in", "0", circuit.SatRamp{V0: 0, V1: 1.8, Start: 0.2e-9, Slew: 0.1e-9})
		if err := device.INV.Instantiate(nl, "u1", []string{"in"}, "out", device.BuildOpts{Tech: device.Tech180, Drive: 2}); err != nil {
			b.Fatal(err)
		}
		nl.AddC("CL", "out", "0", circuit.V(20e-15))
		return nl
	}
	for _, variant := range []struct {
		name     string
		adaptive bool
	}{{"fixed", false}, {"adaptive", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				sim, err := spice.NewSimulator(build(), spice.Options{
					DT: 2e-12, TStop: 10e-9, Models: device.Tech180,
					Adaptive: variant.adaptive,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run([]string{"out"})
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Stats.Steps
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkExtractVsVar contrasts the two ways to produce a per-sample
// pole/residue macromodel on the same variational library: evaluating
// the library and running the exact eigendecomposition-based extraction
// (the pre-characterize-once cost), versus the first-order macromodel's
// affine update into reusable scratch. The gap is the paper's per-sample
// characterization saving; the var path must also be allocation-free.
func BenchmarkExtractVsVar(b *testing.B) {
	bus := interconnect.BuildBus(interconnect.Wire180, 3, 100, 1, true)
	for _, n := range bus.In {
		bus.Netlist.MarkPort(n)
	}
	sys, err := circuit.AssembleVariational(bus.Netlist)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.SetPortConductance([]float64{1e-2, 1e-2, 1e-2}); err != nil {
		b.Fatal(err)
	}
	vrom, err := mor.BuildVariational(sys, mor.BuildOptions{Order: 6})
	if err != nil {
		b.Fatal(err)
	}
	w := map[string]float64{interconnect.ParamW: 0.4, interconnect.ParamT: -0.3}
	b.Run("exactExtract", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rom := vrom.At(w)
			pr, err := poleres.Extract(rom)
			if err != nil {
				b.Fatal(err)
			}
			pr.StabilizeShiftInPlace()
		}
	})
	b.Run("varMacro", func(b *testing.B) {
		vm, err := poleres.ExtractVar(vrom)
		if err != nil {
			b.Fatal(err)
		}
		me := vm.NewEval()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr, err := vm.EvalInto(me, w)
			if err != nil {
				b.Fatal(err)
			}
			pr.StabilizeShiftInPlace()
		}
	})
}

// BenchmarkMCAllocs tracks the full Monte-Carlo per-sample cost — time
// AND allocations (run with -benchmem) — on the Example-2 coupled stage,
// fast path vs exact per-sample extraction, single worker so the numbers
// are per-sample, not per-core.
func BenchmarkMCAllocs(b *testing.B) {
	o := experiments.Ex2Options{Samples: 16}
	fastSt, err := experiments.BuildExample2Stage(o, 40, false)
	if err != nil {
		b.Fatal(err)
	}
	exactSt, err := experiments.BuildExample2Stage(o, 40, true)
	if err != nil {
		b.Fatal(err)
	}
	specs := experiments.Example2Samples(o)
	b.Run("varMacro", func(b *testing.B) {
		sc := fastSt.NewScratch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fastSt.RunWith(sc, specs[i%len(specs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exactExtract", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exactSt.Run(specs[i%len(specs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
