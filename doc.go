// Package lcsim is a pure-Go reproduction of Acar, Pileggi & Nassif,
// "A Linear-Centric Simulation Framework for Parametric Fluctuations"
// (DATE 2002): variational reduced-order interconnect models, the TETA
// Successive-Chords waveform engine with pole/residue stabilization, and
// statistical path-delay analysis (Monte-Carlo and Gradient Analysis).
//
// The root package carries the benchmark suite (bench_test.go) that
// regenerates every table and figure of the paper's evaluation; the
// implementation lives under internal/ (see DESIGN.md for the system
// inventory) and is exercised by the cmd/ report tools and the runnable
// examples/ programs.
//
// # Context-first API and the shared RunConfig
//
// Every long-running entry point is context-first — there is exactly one
// form of each driver, and it takes a context:
//
//	core.Path.MonteCarloCtx(ctx, cfg)
//	core.Path.MonteCarloCorrelatedCtx(ctx, cfg)
//	core.PathPair.MonteCarloSkewCtx(ctx, cfg)
//	stat.MapSamplesCtx(ctx, ...)
//
// (The historical non-Ctx aliases, the boolean sampler toggles
// MCConfig.UseLHS/UseHalton, and the Parallel/Direct switches have been
// removed; use Sampler, Workers and Engine instead.)
//
// A canceled context aborts the run promptly and returns ctx.Err()
// wrapped with the sample index reached (errors.Is against
// context.Canceled/DeadlineExceeded works).
//
// Everything that describes how a statistical run executes — as opposed
// to what it computes — lives in one embedded struct, core.RunConfig,
// shared by MCConfig and SkewConfig: Seed, Workers, BatchSize, Engine,
// Ladder, OnFailure, SampleTimeout, Checkpoint, Metrics, Progress. Field
// promotion keeps call sites flat (cfg.Seed, cfg.Workers), and a policy
// configured once can be reused across drivers verbatim.
//
// Runs execute on the internal/runner worker pool: Workers = 0 means
// serial, negative means GOMAXPROCS, positive is an exact count.
// BatchSize groups that many samples per dispatch to cut channel
// round-trips on fast kernels (0 picks a sensible default). Both are
// pure throughput knobs: at a fixed seed the per-sample results, the
// aggregate statistics, the skip-set and the FailureReport are
// bit-identical at any (Workers, BatchSize) combination. Aggregation
// uses exact compensated accumulators (stat.ExactSum) sharded per
// worker and merged deterministically, so even the floating-point bits
// of mean and sigma are partition-invariant.
//
// # Per-sample failure taxonomy
//
// Statistical runs evaluate thousands of parameter samples; a handful can
// legitimately fail (an extreme corner diverges, a macromodel's DC
// correction hits a singular Gr(w)). Every per-sample failure is typed so
// callers can react by cause with errors.Is / errors.As:
//
//	teta.ErrNoConvergence       SC ran out of its iteration budget
//	teta.ErrSCDiverged          the SC transient diverged (wraps ErrNoConvergence)
//	teta.ErrDCNewtonFailed      no t=0 operating point (wraps ErrNoConvergence)
//	poleres.ErrSingularGr       Gr(w) singular — DC correction impossible
//	poleres.ErrAllPolesUnstable stabilization removed every pole
//	core.ErrWaveformNaN         output never completed its transition
//	core.ErrSampleTimeout       the per-sample watchdog deadline expired
//
// core.ClassifyFailure maps any of these (arbitrarily wrapped) to a
// core.FailureClass, and core.SampleError carries the sample index plus
// class through a run's error chain.
//
// MCConfig.OnFailure / SkewConfig.OnFailure select the run-level policy:
// FailFast (default) aborts with the lowest failing index's error; Skip
// excludes failing samples from the aggregate statistics and reports them
// in the result's FailureReport; Degrade retries each failure through the
// engine ladder (every ladder-eligible backend costlier than the primary,
// ascending — teta-fast → teta-exact → spice-golden by default) before
// skipping. Under every policy the skip-set, the FailureReport and the
// statistics are bit-identical at any worker count.
//
// MCConfig.SampleTimeout / SkewConfig.SampleTimeout arm a per-sample
// watchdog: an evaluation that exceeds the deadline is abandoned and
// fails with core.ErrSampleTimeout (class FailTimeout), flowing through
// the same policies — Degrade retries the next ladder rung under a fresh
// deadline, Skip records the timeout and moves on, FailFast surfaces the
// typed error. A single pathological sample can therefore never stall a
// statistical sweep.
//
// # Crash-safe checkpoint/resume
//
// Long statistical runs can journal their progress durably
// (internal/checkpoint): MCConfig.Checkpoint / SkewConfig.Checkpoint
// point at a snapshot file that is rewritten atomically
// (write-to-temp + fsync + rename, previous generation kept as .bak)
// every K samples or T wall-seconds, always at a prefix-consistent cut
// of the ordered delivery stream. A killed run restarted with
// Checkpoint.Resume re-evaluates only the remaining samples on the
// restored accumulators and finishes bit-identical to an uninterrupted
// run — at any worker count, which is deliberately not part of the
// snapshot's config fingerprint. A snapshot whose fingerprint (seed, N,
// sampler, engine/ladder, policy, source list) disagrees with the live
// run is refused with checkpoint.ErrMismatch; a corrupt snapshot
// (checkpoint.ErrCorruptCheckpoint, CRC-verified) falls back to the
// .bak generation. The lcsim path/skew/bench subcommands expose
// -checkpoint, -checkpoint-every, -resume and -sample-timeout.
//
// # Crash-only job daemon (lcsimd)
//
// cmd/lcsimd (internal/jobd) serves the job layer as a daemon: a
// durable on-disk queue of job.Specs, each executed as a chain of
// checkpoint-journaled sample-range shards (checkpoint.Config.Limit +
// core.ErrPartial) on a bounded worker pool, with per-shard retry under
// capped exponential backoff, a typed transient/permanent/interrupted
// failure split over the taxonomy above (jobd.Classify), heartbeat
// watchdog cancellation of stalled attempts, graceful drain on
// SIGTERM, and full recovery from SIGKILL — on restart the daemon
// resumes every journal, and the merged result is bit-identical to a
// direct `lcsim run` of the same spec at any shard size. There is no
// "running" state on disk: completion derives from the files that
// exist, and a corrupt scheduling record self-heals to "queued".
//
// internal/faultinj is the deterministic chaos layer behind the
// daemon's tests: a seeded, budgeted fault schedule (torn writes,
// ENOSPC, fsync/rename failures, read corruption, scripted engine
// failures and hangs) injected through the filesystem seam that
// internal/checkpoint, internal/modelcache and the jobd queue write
// through, and through a core engine wrapper that preserves engine
// names (so spec hashes and journal fingerprints stay valid under
// chaos). `lcsimd serve -fault ...` arms the same schedule in the real
// binary; the daemon-smoke leg of `make check` kills the daemon
// mid-shard under fault injection and requires bit-identical results
// after restart.
//
// # Engine registry
//
// Stage evaluation is pluggable behind the core.Engine interface. Four
// backends are registered, in ascending cost order:
//
//	teta-fast     characterize-once variational macromodels (default)
//	teta-exact    per-sample pole/residue extraction, same SC transient
//	teta-direct   dense direct-form evaluation (diagnostic; not in ladders)
//	spice-golden  transistor-level Newton transient per sample (reference)
//
// Every statistical driver (MonteCarloCtx, MonteCarloCorrelatedCtx,
// GradientAnalysis, MonteCarloSkewCtx, WorstCase) takes an Engine name in
// its config and runs unmodified against any registered backend; "lcsim
// validate" cross-checks two or more engines on the same sample set.
//
// # Full-chip statistical STA
//
// internal/ssta lifts the path-level statistics to chip level: it
// partitions a tech-mapped iscas.Circuit into fan-out-free blocks,
// characterizes each distinct cell chain exactly once (content-keyed
// macromodel cache, fanned across the runner pool), and propagates
// canonical (mean, sensitivity, residual) arrival forms through the
// block graph with Clark's statistical max at reconvergent fan-in.
// ssta.Run is the analytical driver; ssta.RunMC is the brute-force
// per-sample reference on the same graph, under the same RunConfig
// (policies, watchdog, checkpoint journal). "lcsim sta -ssta" is the
// CLI surface; the ssta-smoke leg of `make check` gates SSTA-vs-MC
// agreement on s27.
package lcsim
