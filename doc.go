// Package lcsim is a pure-Go reproduction of Acar, Pileggi & Nassif,
// "A Linear-Centric Simulation Framework for Parametric Fluctuations"
// (DATE 2002): variational reduced-order interconnect models, the TETA
// Successive-Chords waveform engine with pole/residue stabilization, and
// statistical path-delay analysis (Monte-Carlo and Gradient Analysis).
//
// The root package carries the benchmark suite (bench_test.go) that
// regenerates every table and figure of the paper's evaluation; the
// implementation lives under internal/ (see DESIGN.md for the system
// inventory) and is exercised by the cmd/ report tools and the runnable
// examples/ programs.
package lcsim
