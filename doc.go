// Package lcsim is a pure-Go reproduction of Acar, Pileggi & Nassif,
// "A Linear-Centric Simulation Framework for Parametric Fluctuations"
// (DATE 2002): variational reduced-order interconnect models, the TETA
// Successive-Chords waveform engine with pole/residue stabilization, and
// statistical path-delay analysis (Monte-Carlo and Gradient Analysis).
//
// The root package carries the benchmark suite (bench_test.go) that
// regenerates every table and figure of the paper's evaluation; the
// implementation lives under internal/ (see DESIGN.md for the system
// inventory) and is exercised by the cmd/ report tools and the runnable
// examples/ programs.
//
// # Context-first API convention
//
// Long-running entry points come in pairs: a context-first form that is
// the real implementation, and a legacy form kept as a deprecated alias
// that delegates to context.Background():
//
//	core.Path.MonteCarloCtx(ctx, cfg)      / core.Path.MonteCarlo(cfg)
//	core.PathPair.MonteCarloSkewCtx(...)   / core.PathPair.MonteCarloSkew(...)
//	core.Path.MonteCarloCorrelatedCtx(...) / core.Path.MonteCarloCorrelated(...)
//	stat.MapSamplesCtx(...)                / stat.MapSamples(...)
//
// The Ctx forms honor cancellation and deadlines: a canceled context
// aborts the run promptly and returns ctx.Err() wrapped with the sample
// index reached (errors.Is against context.Canceled/DeadlineExceeded
// works). They run on the internal/runner worker pool: Workers = 0 means
// serial, negative means GOMAXPROCS, positive is an exact count — and at
// a fixed seed the results are bit-identical at any worker count.
//
// # Per-sample failure taxonomy
//
// Statistical runs evaluate thousands of parameter samples; a handful can
// legitimately fail (an extreme corner diverges, a macromodel's DC
// correction hits a singular Gr(w)). Every per-sample failure is typed so
// callers can react by cause with errors.Is / errors.As:
//
//	teta.ErrNoConvergence       SC ran out of its iteration budget
//	teta.ErrSCDiverged          the SC transient diverged (wraps ErrNoConvergence)
//	teta.ErrDCNewtonFailed      no t=0 operating point (wraps ErrNoConvergence)
//	poleres.ErrSingularGr       Gr(w) singular — DC correction impossible
//	poleres.ErrAllPolesUnstable stabilization removed every pole
//	core.ErrWaveformNaN         output never completed its transition
//	core.ErrSampleTimeout       the per-sample watchdog deadline expired
//
// core.ClassifyFailure maps any of these (arbitrarily wrapped) to a
// core.FailureClass, and core.SampleError carries the sample index plus
// class through a run's error chain.
//
// MCConfig.OnFailure / SkewConfig.OnFailure select the run-level policy:
// FailFast (default) aborts with the lowest failing index's error; Skip
// excludes failing samples from the aggregate statistics and reports them
// in the result's FailureReport; Degrade retries each failure through the
// engine ladder (every ladder-eligible backend costlier than the primary,
// ascending — teta-fast → teta-exact → spice-golden by default) before
// skipping. Under every policy the skip-set, the FailureReport and the
// statistics are bit-identical at any worker count.
//
// MCConfig.SampleTimeout / SkewConfig.SampleTimeout arm a per-sample
// watchdog: an evaluation that exceeds the deadline is abandoned and
// fails with core.ErrSampleTimeout (class FailTimeout), flowing through
// the same policies — Degrade retries the next ladder rung under a fresh
// deadline, Skip records the timeout and moves on, FailFast surfaces the
// typed error. A single pathological sample can therefore never stall a
// statistical sweep.
//
// # Crash-safe checkpoint/resume
//
// Long statistical runs can journal their progress durably
// (internal/checkpoint): MCConfig.Checkpoint / SkewConfig.Checkpoint
// point at a snapshot file that is rewritten atomically
// (write-to-temp + fsync + rename, previous generation kept as .bak)
// every K samples or T wall-seconds, always at a prefix-consistent cut
// of the ordered delivery stream. A killed run restarted with
// Checkpoint.Resume re-evaluates only the remaining samples on the
// restored accumulators and finishes bit-identical to an uninterrupted
// run — at any worker count, which is deliberately not part of the
// snapshot's config fingerprint. A snapshot whose fingerprint (seed, N,
// sampler, engine/ladder, policy, source list) disagrees with the live
// run is refused with checkpoint.ErrMismatch; a corrupt snapshot
// (checkpoint.ErrCorruptCheckpoint, CRC-verified) falls back to the
// .bak generation. The lcsim path/skew/bench subcommands expose
// -checkpoint, -checkpoint-every, -resume and -sample-timeout.
//
// # Engine registry
//
// Stage evaluation is pluggable behind the core.Engine interface. Four
// backends are registered, in ascending cost order:
//
//	teta-fast     characterize-once variational macromodels (default)
//	teta-exact    per-sample pole/residue extraction, same SC transient
//	teta-direct   dense direct-form evaluation (diagnostic; not in ladders)
//	spice-golden  transistor-level Newton transient per sample (reference)
//
// Every statistical driver (MonteCarloCtx, MonteCarloCorrelatedCtx,
// GradientAnalysis, MonteCarloSkewCtx, WorstCase) takes an Engine name in
// its config and runs unmodified against any registered backend; "lcsim
// validate" cross-checks two or more engines on the same sample set.
package lcsim
